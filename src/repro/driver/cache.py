"""Content-addressed artifact cache for compiled applications.

Compiling the same workload repeatedly is the harness's common case (each
figure recompiles its workloads, ``bench_ablation`` recompiles per
configuration), so the session keys every compile on

    (source hash, entry, domain annotations,
     accelerator config fingerprint, pass-pipeline fingerprint)

and serves repeats from memory — or, when a ``cache_dir`` is given, from a
pickle-per-key on-disk tier that survives across processes. The disk tier
degrades gracefully in both directions: an artifact that will not pickle
(or a disk that will not accept it) stays memory-only, and a corrupt,
truncated, or unreadable on-disk entry is treated as a miss — evicted and
reported through the session's diagnostics — never raised out of ``get``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from .lease import Lease


def fingerprint(*parts):
    """sha256 hex digest over the stable repr of *parts*."""
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def accelerator_fingerprint(accelerators):
    """Stable fingerprint of an accelerator configuration dict.

    Captures everything translation and cost modelling depend on: the
    backend class, its name, the AccSpec capability sets, and the full
    hardware parameter set (so a DSE-configured variant never aliases the
    stock backend). Workload ``data_hints`` are deliberately excluded —
    they are bound per compile and do not change the compiled artifact.
    """
    parts = []
    for domain in sorted(accelerators):
        accelerator = accelerators[domain]
        spec = accelerator.spec
        parts.append(
            (
                domain,
                type(accelerator).__name__,
                accelerator.name,
                tuple(sorted(spec.supported_ops)),
                tuple(sorted(spec.scalar_classes)),
                tuple(sorted(spec.macro_components)),
                tuple(sorted(spec.translations)),
                repr(accelerator.params),
            )
        )
    return fingerprint(*parts)


#: Counter attribute names, in render order.
_STAT_FIELDS = (
    "hits",
    "misses",
    "stores",
    "disk_hits",
    "disk_errors",
    "plan_hits",
    "plan_misses",
    "plan_stores",
    "bucket_hits",
    "bucket_misses",
    "bucket_stores",
    "bucket_evictions",
    "kernel_hits",
    "kernel_misses",
    "kernel_stores",
    "kernel_disk_hits",
    "kernel_evictions",
    "lease_acquired",
    "lease_waited",
    "lease_reclaimed",
    "lease_timeouts",
)


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance.

    Counters advance through :meth:`bump` under an internal lock — the
    serving layer's workers share one cache — and reads for reporting go
    through :meth:`snapshot`/:meth:`to_dict`; :meth:`reset` lets CLI entry
    points start from zero instead of tracking deltas.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_hits: int = 0
    disk_errors: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_stores: int = 0
    bucket_hits: int = 0
    bucket_misses: int = 0
    bucket_stores: int = 0
    bucket_evictions: int = 0
    kernel_hits: int = 0
    kernel_misses: int = 0
    kernel_stores: int = 0
    kernel_disk_hits: int = 0
    kernel_evictions: int = 0
    #: Cross-process single-flight (see :meth:`ArtifactCache.get_or_build`):
    #: leases this process won (it built), waits that ended with another
    #: process's artifact, stale leases reclaimed from dead builders, and
    #: waits that timed out into a defensive local build.
    lease_acquired: int = 0
    lease_waited: int = 0
    lease_reclaimed: int = 0
    lease_timeouts: int = 0

    def __post_init__(self):
        self._lock = threading.Lock()

    def bump(self, **deltas):
        with self._lock:
            for name, delta in deltas.items():
                if name not in _STAT_FIELDS:
                    raise AttributeError(f"unknown cache counter {name!r}")
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self):
        with self._lock:
            return CacheStats(
                **{name: getattr(self, name) for name in _STAT_FIELDS}
            )

    def reset(self):
        with self._lock:
            for name in _STAT_FIELDS:
                setattr(self, name, 0)
        return self

    def to_dict(self):
        with self._lock:
            return {name: getattr(self, name) for name in _STAT_FIELDS}

    def render(self):
        line = f"{self.hits} hit(s) / {self.misses} miss(es), {self.stores} store(s)"
        if self.disk_hits or self.disk_errors:
            line += f"; disk: {self.disk_hits} hit(s), {self.disk_errors} error(s)"
        if self.plan_hits or self.plan_misses or self.plan_stores:
            line += (
                f"; plans: {self.plan_hits} hit(s) / "
                f"{self.plan_misses} miss(es), {self.plan_stores} store(s)"
            )
        if (
            self.bucket_hits
            or self.bucket_misses
            or self.bucket_stores
            or self.bucket_evictions
        ):
            line += (
                f"; buckets: {self.bucket_hits} hit(s) / "
                f"{self.bucket_misses} miss(es), "
                f"{self.bucket_stores} store(s)"
            )
            if self.bucket_evictions:
                line += f", {self.bucket_evictions} evicted"
        if self.kernel_hits or self.kernel_misses or self.kernel_stores:
            line += (
                f"; kernels: {self.kernel_hits} hit(s) / "
                f"{self.kernel_misses} miss(es), "
                f"{self.kernel_stores} store(s)"
            )
            if self.kernel_evictions:
                line += f", {self.kernel_evictions} evicted"
        return line


@dataclass
class ArtifactCache:
    """Two-tier (memory, optional disk) cache keyed by content hash.

    Thread-safe: one cache instance is shared by every worker of the
    serving layer. Tier dictionaries and stats mutate under an internal
    RLock, and disk entries are written via temp-file + ``os.replace`` so
    a concurrent reader (same process or another one sharing the
    directory) can never observe a truncated pickle.
    """

    cache_dir: Optional[str] = None
    stats: CacheStats = field(default_factory=CacheStats)
    #: Optional :class:`~repro.driver.diagnostics.Diagnostics` sink for
    #: disk-tier degradation warnings (the session wires its own in).
    diagnostics: Optional[object] = None
    _memory: Dict[str, object] = field(default_factory=dict)
    #: Execution-plan tier, keyed on (graph fingerprint, plan config).
    #: Memory-only: plans hold live numpy closures and weak graph refs,
    #: so they are cheap to rebuild but pointless to pickle.
    _plans: Dict[str, object] = field(default_factory=dict)
    #: Shape-bucket tier: ``template digest -> bucket digest -> plan``.
    #: Groups every specialization compiled from one source template so
    #: sibling buckets can be listed and evicted independently; plans are
    #: memory-only for the same reason as ``_plans``.
    _buckets: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: Generated-kernel tier, keyed by
    #: :func:`repro.codegen.kernel_cache_key` — a pure derivation of the
    #: owning plan's key, so plan eviction can always find its sibling.
    #: Memory holds live :class:`~repro.codegen.KernelArtifact` objects;
    #: the disk tier persists the generated *source record* (source text,
    #: constants, scratch specs, report) and recompiles on load, because
    #: code objects and exec'd functions do not pickle.
    _kernels: Dict[str, object] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def __post_init__(self):
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
            self.cache_dir.mkdir(parents=True, exist_ok=True)

    def _path(self, key):
        return self.cache_dir / f"{key}.pkl"

    def _warn(self, message):
        if self.diagnostics is not None:
            self.diagnostics.warning(message, stage="cache")

    def get(self, key):
        """Cached artifact for *key*, or None (counts a hit/miss).

        A corrupt/truncated/unreadable disk entry is a *miss*: the entry
        is evicted (best effort) and reported, and the compile simply
        re-runs. No disk-tier failure ever escapes this method.
        """
        with self._lock:
            if key in self._memory:
                self.stats.bump(hits=1)
                return self._memory[key]
            if self.cache_dir is not None:
                try:
                    path = self._path(key)
                    exists = path.exists()
                except OSError:
                    self.stats.bump(disk_errors=1)
                    exists = False
                if exists:
                    try:
                        with open(path, "rb") as handle:
                            artifact = pickle.load(handle)
                    except Exception as exc:
                        self.stats.bump(disk_errors=1)
                        self._evict_disk(key)
                        self._warn(
                            f"evicted corrupt disk cache entry {key[:12]}… "
                            f"({type(exc).__name__}); treating as a miss"
                        )
                    else:
                        self._memory[key] = artifact
                        self.stats.bump(hits=1, disk_hits=1)
                        return artifact
            self.stats.bump(misses=1)
            return None

    def _evict_disk(self, key):
        try:
            self._path(key).unlink()
        except OSError:
            pass

    def put(self, key, artifact):
        with self._lock:
            self._memory[key] = artifact
            self.stats.bump(stores=1)
            if self.cache_dir is not None:
                try:
                    payload = pickle.dumps(artifact)
                except Exception:
                    # Unpicklable artifacts (exotic user extensions) stay
                    # memory-resident; the session reports this as a warning.
                    self.stats.bump(disk_errors=1)
                    return False
                self._write_disk(key, payload)
            return True

    def _write_disk(self, key, payload):
        """Atomically publish *payload* at the key's path.

        Write-to-temp + ``os.replace`` means a reader racing this write
        sees either the complete old entry or the complete new one, never
        a truncated pickle — so the corrupt-evict path in :meth:`get`
        only ever fires for genuine disk corruption, not for in-progress
        writes by a sibling process.
        """
        path = self._path(key)
        tmp = path.with_name(
            f".{key}.{os.getpid()}-{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError as exc:
            # A full/read-only disk degrades to the memory tier.
            self.stats.bump(disk_errors=1)
            self._warn(
                f"disk cache write failed for {key[:12]}… "
                f"({type(exc).__name__}); entry is memory-only"
            )
            try:
                tmp.unlink()
            except OSError:
                pass
            return False
        return True

    # -- cross-process single-flight ----------------------------------------

    def _lease_path(self, key):
        return self.cache_dir / f"{key}.lease"

    def disk_probe(self, key):
        """Stats-free existence check for the disk entry of *key*.

        Used as the ``published()`` predicate while waiting on another
        process's lease — polling must not inflate hit/miss counters.
        """
        if self.cache_dir is None:
            return False
        try:
            return self._path(key).exists()
        except OSError:
            return False

    def get_or_build(
        self, key, builder, lease_ttl_s=60.0, wait_timeout_s=120.0, poll_s=0.005
    ):
        """Fetch *key*, or run *builder* under a cross-process lease.

        Returns ``(artifact, provenance)`` with provenance one of
        ``"cache"`` (hit before any coordination), ``"built"`` (this
        process held the lease and ran *builder*), or ``"coalesced"``
        (another process built it while we waited on the artifact).

        *builder* is called **without** the cache lock held (it is the
        full compile pipeline) and is expected to publish its result via
        :meth:`put` itself (as ``CompilerSession._compile_stages`` does);
        a builder that does not is published here as a fallback.

        The lease protocol never deadlocks: a crashed holder's lease is
        reclaimed (pid probe or ttl), and a wait that times out degrades
        to building locally — the atomic disk publish makes the
        duplicate build harmless.
        """
        artifact = self.get(key)
        if artifact is not None:
            return artifact, "cache"
        if self.cache_dir is None:
            # No shared tier to coordinate over; plain local build.
            artifact = builder()
            self._publish_if_missing(key, artifact)
            return artifact, "built"
        lease = Lease(self._lease_path(key), ttl_s=lease_ttl_s)
        deadline = time.monotonic() + wait_timeout_s
        while True:
            if lease.acquire():
                self.stats.bump(lease_acquired=1)
                try:
                    # A sibling may have published while we raced for the
                    # lease; re-check before paying for the build.
                    artifact = self.get(key)
                    if artifact is not None:
                        return artifact, "coalesced"
                    artifact = builder()
                    self._publish_if_missing(key, artifact)
                    return artifact, "built"
                finally:
                    lease.release()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                outcome = "timeout"
            else:
                outcome = lease.wait(
                    lambda: self.disk_probe(key),
                    timeout_s=remaining,
                    poll_s=poll_s,
                )
            if outcome == "published":
                artifact = self.get(key)
                if artifact is not None:
                    self.stats.bump(lease_waited=1)
                    return artifact, "coalesced"
                # Published entry was corrupt/evicted on read: fall
                # through and race for the lease ourselves.
            elif outcome == "reclaim":
                self.stats.bump(lease_reclaimed=1)
            elif outcome == "timeout":
                # Never deadlock on a wedged (live but stuck) holder:
                # duplicate the build; atomic publish keeps it harmless.
                self.stats.bump(lease_timeouts=1)
                artifact = builder()
                self._publish_if_missing(key, artifact)
                return artifact, "built"
            # "free" (holder vanished without publishing) loops back to
            # the acquire race.

    def _publish_if_missing(self, key, artifact):
        with self._lock:
            if key not in self._memory:
                self.put(key, artifact)

    # -- execution-plan tier -----------------------------------------------

    def plan_get(self, key):
        """Cached ExecutionPlan for *key*, or None (counts a hit/miss).

        Keys come from :func:`repro.srdfg.plan.plan_cache_key`, which
        hashes the graph's *structure* — so a session replay that rebuilt
        a structurally identical graph still hits this tier and skips
        planning entirely.
        """
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.stats.bump(plan_misses=1)
                return None
            self.stats.bump(plan_hits=1)
            return plan

    def plan_put(self, key, plan):
        with self._lock:
            self._plans[key] = plan
            self.stats.bump(plan_stores=1)
        return True

    # -- shape-bucket tier ---------------------------------------------------

    def bucket_get(self, template, bucket):
        """Specialized plan for (*template*, *bucket*), or None.

        *template* is a :class:`~repro.srdfg.shapes.SpecializationKey`
        template digest (one per source template, whatever its dims);
        *bucket* is its bucket digest (bucketed binding + plan config).
        Counts ``bucket_hits``/``bucket_misses``.
        """
        with self._lock:
            plan = self._buckets.get(template, {}).get(bucket)
            if plan is None:
                self.stats.bump(bucket_misses=1)
                return None
            self.stats.bump(bucket_hits=1)
            return plan

    def bucket_put(self, template, bucket, plan):
        with self._lock:
            self._buckets.setdefault(template, {})[bucket] = plan
            self.stats.bump(bucket_stores=1)
        return True

    def buckets_for(self, template):
        """Digests of every bucket cached for *template*."""
        with self._lock:
            return tuple(self._buckets.get(template, ()))

    def bucket_count(self, template=None):
        with self._lock:
            if template is not None:
                return len(self._buckets.get(template, ()))
            return sum(len(group) for group in self._buckets.values())

    def evict_bucket(self, template, bucket):
        """Drop one bucket's plan; sibling buckets are untouched.

        Returns True if something was evicted. An emptied template group
        is removed so ``bucket_summary`` never lists ghost templates.
        """
        with self._lock:
            group = self._buckets.get(template)
            if not group or bucket not in group:
                return False
            del group[bucket]
            if not group:
                del self._buckets[template]
            self.stats.bump(bucket_evictions=1)
            return True

    # -- generated-kernel tier -----------------------------------------------

    def kernel_get(self, key):
        """Cached KernelArtifact for *key*, or None (counts a hit/miss).

        The disk tier stores source records, not artifacts: a disk hit
        recompiles the generated source. A record that fails to load *or
        to recompile* (corrupt pickle, truncated source, bad constants)
        is evicted and reported exactly like a corrupt artifact entry —
        a counted miss, never a raise; the session just regenerates.
        """
        with self._lock:
            artifact = self._kernels.get(key)
            if artifact is not None:
                self.stats.bump(kernel_hits=1)
                return artifact
            if self.cache_dir is not None:
                record = None
                try:
                    path = self._path(key)
                    if path.exists():
                        with open(path, "rb") as handle:
                            record = pickle.load(handle)
                except Exception as exc:
                    self.stats.bump(disk_errors=1)
                    self._evict_disk(key)
                    self._warn(
                        f"evicted corrupt kernel cache entry {key[:12]}… "
                        f"({type(exc).__name__}); treating as a miss"
                    )
                if record is not None:
                    try:
                        from ..codegen import KernelArtifact

                        artifact = KernelArtifact(
                            record["plan_key"],
                            record["source"],
                            record["constants"],
                            record["scratch_specs"],
                            report=record.get("report"),
                        )
                    except Exception as exc:
                        self.stats.bump(disk_errors=1)
                        self._evict_disk(key)
                        self._warn(
                            f"evicted corrupt kernel source entry "
                            f"{key[:12]}… ({type(exc).__name__}); "
                            f"treating as a miss"
                        )
                    else:
                        self._kernels[key] = artifact
                        self.stats.bump(kernel_hits=1, kernel_disk_hits=1)
                        return artifact
            self.stats.bump(kernel_misses=1)
            return None

    def kernel_put(self, key, artifact):
        with self._lock:
            self._kernels[key] = artifact
            self.stats.bump(kernel_stores=1)
            if self.cache_dir is not None:
                record = {
                    "plan_key": artifact.plan_key,
                    "source": artifact.source,
                    "constants": getattr(artifact, "constants", {}),
                    "scratch_specs": list(artifact.scratch_specs),
                    "report": dict(artifact.report),
                }
                try:
                    payload = pickle.dumps(record)
                except Exception:
                    self.stats.bump(disk_errors=1)
                    return False
                self._write_disk(key, payload)
            return True

    def evict_kernel(self, key):
        """Drop one kernel entry from memory and disk.

        Returns True if anything was evicted."""
        with self._lock:
            evicted = self._kernels.pop(key, None) is not None
            if self.cache_dir is not None:
                try:
                    path = self._path(key)
                    if path.exists():
                        path.unlink()
                        evicted = True
                except OSError:
                    pass
            if evicted:
                self.stats.bump(kernel_evictions=1)
            return evicted

    def evict_plan(self, key):
        """Drop a plan *and its sibling generated kernel* together.

        Mirrors ``evict_bucket``'s sibling safety in the other
        direction: a stale plan must never leave its generated kernel
        behind (the kernel bakes the plan's shapes and constants in), so
        eviction derives the kernel key from the plan key and clears
        both tiers. Returns True if the plan entry existed.
        """
        from ..codegen import kernel_cache_key

        with self._lock:
            existed = self._plans.pop(key, None) is not None
            self.evict_kernel(kernel_cache_key(key))
            return existed

    def bucket_summary(self):
        """``template digest (12 chars) -> bucket count``, for reports."""
        with self._lock:
            return {
                template[:12]: len(group)
                for template, group in sorted(self._buckets.items())
            }

    def clear(self):
        with self._lock:
            self._memory.clear()
            self._plans.clear()
            self._buckets.clear()
            self._kernels.clear()

    def __len__(self):
        with self._lock:
            return len(self._memory)

    def __contains__(self, key):
        with self._lock:
            return key in self._memory
