"""Session-wide diagnostics engine.

Every compilation stage reports through one :class:`Diagnostics` instance,
so a driver (CLI, harness, tests) sees the complete, ordered stream of
notes/warnings/errors with source locations where the front end has them.
Mirrors the "fail loudly at its own boundary" philosophy of the pass
manager: a stage that degrades (scalar fallback, cache spill to memory)
says so instead of silently changing behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

NOTE = "note"
WARNING = "warning"
ERROR = "error"

_SEVERITIES = (NOTE, WARNING, ERROR)


@dataclass(frozen=True)
class Diagnostic:
    """One source-located message emitted during compilation."""

    severity: str
    message: str
    stage: Optional[str] = None
    line: Optional[int] = None
    column: Optional[int] = None

    def render(self):
        location = ""
        if self.line is not None:
            location = f" at line {self.line}"
            if self.column is not None:
                location += f", col {self.column}"
        stage = f" [{self.stage}]" if self.stage else ""
        return f"{self.severity}{stage}: {self.message}{location}"


class Diagnostics:
    """Ordered collection of diagnostics for one compiler session."""

    def __init__(self):
        self.entries: List[Diagnostic] = []

    def emit(self, severity, message, stage=None, line=None, column=None):
        if severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {severity!r}")
        diagnostic = Diagnostic(
            severity=severity, message=message, stage=stage, line=line, column=column
        )
        self.entries.append(diagnostic)
        return diagnostic

    def note(self, message, **kwargs):
        return self.emit(NOTE, message, **kwargs)

    def warning(self, message, **kwargs):
        return self.emit(WARNING, message, **kwargs)

    def error(self, message, **kwargs):
        return self.emit(ERROR, message, **kwargs)

    # -- queries -----------------------------------------------------------

    def by_severity(self, severity):
        return [entry for entry in self.entries if entry.severity == severity]

    @property
    def warnings(self):
        return self.by_severity(WARNING)

    @property
    def errors(self):
        return self.by_severity(ERROR)

    @property
    def has_errors(self):
        return bool(self.errors)

    def counts(self):
        """``{severity: count}`` over all entries."""
        tally = {severity: 0 for severity in _SEVERITIES}
        for entry in self.entries:
            tally[entry.severity] += 1
        return tally

    def clear(self):
        self.entries.clear()

    def render(self):
        if not self.entries:
            return "no diagnostics"
        return "\n".join(entry.render() for entry in self.entries)

    def __len__(self):
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)
