"""Hardware models: cost framework, CPU/GPU baselines, SoC runtime."""

from .cost import HardwareParams, PerfStats, RooflineModel
from .cpu import BaselinePlatform, CPU_EFFICIENCY, XEON_PARAMS, make_xeon
from .gpu import (
    JETSON_EFFICIENCY,
    JETSON_XAVIER_PARAMS,
    TITAN_EFFICIENCY,
    TITAN_XP_PARAMS,
    make_jetson,
    make_titan_xp,
)
from .soc import SoCRunReport, SoCRuntime

__all__ = [
    "BaselinePlatform",
    "CPU_EFFICIENCY",
    "HardwareParams",
    "JETSON_EFFICIENCY",
    "JETSON_XAVIER_PARAMS",
    "PerfStats",
    "RooflineModel",
    "SoCRunReport",
    "SoCRuntime",
    "TITAN_EFFICIENCY",
    "TITAN_XP_PARAMS",
    "XEON_PARAMS",
    "make_jetson",
    "make_titan_xp",
    "make_xeon",
]
