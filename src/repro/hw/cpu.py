"""Xeon CPU baseline model (Table VI: Xeon E-2176G, 6 cores, 3.7 GHz, 80 W).

The paper's CPU baselines are *optimized* library implementations (ACADO,
GraphMat, FFTW, mlpack/OpenBLAS, TensorFlow-MKL). We model them as the
same lowered srDFG executed on a multicore with AVX2 SIMD, with a
per-domain *achieved efficiency* factor encoding how close each library
family typically gets to peak: dense BLAS-style kernels run far closer to
peak than pointer-chasing graph traversals.

These efficiency factors are the only domain-specific inputs; everything
else (op counts, bytes, kernel counts) comes from the program structure.
"""

from __future__ import annotations

from dataclasses import replace

from ..hw.cost import HardwareParams, PerfStats, RooflineModel
from ..srdfg.graph import COMPUTE

#: Peak: 6 cores x 2 FMA ports x 8 fp32 lanes = 96 mul + 96 add per cycle.
XEON_PARAMS = HardwareParams(
    name="Xeon E-2176G",
    frequency_hz=3.7e9,
    throughput={"alu": 96.0, "mul": 96.0, "div": 6.0, "nonlinear": 12.0},
    power_w=80.0,
    static_fraction=0.4,
    dram_bw=42e9,
    onchip_bw=700e9,  # L2/L3 aggregate
    dispatch_overhead_s=2e-7,  # library-call / loop-setup cost per kernel
    efficiency=1.0,  # replaced per domain below
    system_power_w=15.0,  # DRAM + board beyond the 80 W package
)

#: Fraction of peak the paper's baseline libraries sustain, per domain.
#: Batch-1, latency-bound kernels on a multicore sit in the low single
#: digits of peak FLOPS (ACADO's small matvecs, GraphMat's pointer-heavy
#: traversals, mlpack's Armadillo loops, unplanned strided butterflies);
#: only cuDNN/MKL-style dense CNN inference approaches half of peak.
#: These factors are this reproduction's calibration inputs — see
#: EXPERIMENTS.md ("Baseline calibration").
CPU_EFFICIENCY = {
    "RBT": 0.04,
    "GA": 0.012,
    "DA": 0.03,
    "DSP": 0.025,
    "DL": 0.35,
}


class BaselinePlatform:
    """CPU/GPU cost estimator over a lowered srDFG."""

    def __init__(self, params, efficiency_by_domain, name=None):
        self.params = params
        self.efficiency_by_domain = dict(efficiency_by_domain)
        self.name = name or params.name
        self._models = {}

    def _model(self, domain):
        if domain not in self._models:
            # Private sub-domain tags (e.g. "DA-BLKS") inherit the parent
            # domain's library efficiency.
            base = domain.split("-")[0] if domain else domain
            efficiency = self.efficiency_by_domain.get(
                domain, self.efficiency_by_domain.get(base, 0.2)
            )
            self._models[domain] = RooflineModel(
                replace(self.params, efficiency=efficiency)
            )
        return self._models[domain]

    def estimate_graph(self, graph, hints=None):
        """PerfStats of executing one invocation of *graph*.

        *hints* may carry ``op_scale`` — the ratio of real algorithmic work
        to the dense srDFG lattice (graph workloads execute sparsely in
        every real implementation; see DESIGN.md substitutions). The same
        scale is applied to every platform so ratios stay fair.
        """
        hints = hints or {}
        op_scale = hints.get("op_scale", 1.0)
        total = PerfStats()
        self._accumulate(graph, op_scale, total)
        return total

    def _accumulate(self, graph, op_scale, total):
        """Charge every compute node at every recursion level.

        Unlowered multi-granularity graphs keep their component nodes;
        descending into subgraphs makes the estimate granularity-agnostic
        (lowered graphs are flat, so this is a no-op for them).
        """
        for node in graph.nodes:
            if node.subgraph is not None:
                self._accumulate(node.subgraph, op_scale, total)
            if node.kind != COMPUTE:
                continue
            descriptor = node.attrs.get("descriptor")
            if descriptor is None:
                continue
            domain = node.domain or graph.domain
            model = self._model(domain)
            op_counts = {
                cls: count * op_scale for cls, count in descriptor.op_counts.items()
            }
            dram, onchip = _node_bytes(graph, node, op_scale)
            total.add(
                model.kernel_cost(op_counts, dram, onchip, label=node.name)
            )


def _node_bytes(graph, node, op_scale):
    from ..srdfg.metadata import LOCAL

    dram = onchip = 0
    seen = set()
    for edge in graph.in_edges(node):
        key = (edge.src.uid, edge.md.producer_name)
        if key in seen:
            continue
        seen.add(key)
        if edge.md.modifier == LOCAL:
            onchip += edge.md.nbytes
        else:
            dram += edge.md.nbytes
    for edge in graph.out_edges(node):
        key = ("out", edge.md.producer_name)
        if key not in seen:
            seen.add(key)
            dram += edge.md.nbytes
    # Sparse workloads touch op_scale of the dense operand footprint.
    return dram * min(1.0, op_scale), onchip * min(1.0, op_scale)


def make_xeon():
    """The paper's CPU baseline."""
    return BaselinePlatform(XEON_PARAMS, CPU_EFFICIENCY, name="Xeon E-2176G")
