"""Multi-accelerator SoC runtime (§V-A3 of the paper).

All accelerators are cascaded as a single system-on-chip with shared DRAM
and a host. "A light-weight manager executes on the host, ensuring data
dependencies between different accelerators and initiating DMA transfers
between DRAM and local accelerator memory."

The runtime composes a compiled application's per-domain programs
sequentially along the srDFG's dataflow order (the end-to-end pipelines in
the paper — FFT -> LR -> MPC — are chains, so sequential composition with
DMA between stages matches the hardware), charging:

* each fragment to its domain's accelerator model;
* each cross-domain edge to a DMA transfer plus a fixed host-manager
  dispatch cost;
* kernels mapped to the *host* (non-accelerated domains in partial
  acceleration studies) to the CPU baseline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..srdfg.graph import COMPUTE
from .cost import DRAM_PJ_PER_BYTE, PerfStats, safe_div
from .cpu import make_xeon

#: Host-manager cost of initiating one DMA transfer.
HOST_DMA_DISPATCH_S = 5e-6
#: Shared-DRAM DMA bandwidth between accelerator local memories.
SOC_DMA_BW = 16e9


@dataclass
class SoCRunReport:
    """Per-domain and total accounting for one SoC execution."""

    total: PerfStats
    per_domain: Dict[str, PerfStats] = field(default_factory=dict)
    communication: PerfStats = field(default_factory=PerfStats)

    @property
    def communication_fraction(self):
        return safe_div(self.communication.seconds, self.total.seconds)

    @property
    def pipelined_seconds(self):
        """Steady-state initiation interval under software pipelining.

        The end-to-end applications are chains (FFT -> LR -> MPC); run as
        a pipeline across invocations, throughput is bounded by the
        slowest stage rather than the sum. Latency of one result is still
        ``total.seconds``; this is the per-result cost at steady state.
        """
        if not self.per_domain:
            return self.total.seconds
        slowest = max(stats.seconds for stats in self.per_domain.values())
        return max(slowest, self.communication.seconds)

    @property
    def pipeline_speedup(self):
        """Throughput gain of pipelining over sequential execution."""
        return safe_div(self.total.seconds, self.pipelined_seconds, default=1.0)

    def __repr__(self):
        domains = ", ".join(
            f"{domain}={stats.seconds:.3g}s"
            for domain, stats in self.per_domain.items()
        )
        return (
            f"SoCRunReport(total={self.total.seconds:.6g}s, "
            f"comm={self.communication_fraction:.1%}"
            + (f", {domains}" if domains else "")
            + ")"
        )


class SoCRuntime:
    """Schedules a compiled application across accelerators + host."""

    def __init__(self, accelerators, host=None):
        self.accelerators = dict(accelerators)
        self.host = host or make_xeon()

    def execute(self, compiled, accelerated_domains=None, hints=None):
        """Account one invocation of *compiled* on the SoC.

        *accelerated_domains* restricts which domains actually run on
        their accelerator; the rest fall back to the host CPU (this is how
        Fig 10/11's single-domain vs cross-domain combinations are
        produced). Returns :class:`SoCRunReport`.
        """
        hints = hints or {}
        if accelerated_domains is None:
            accelerated_domains = set(self.accelerators)
        accelerated_domains = set(accelerated_domains)

        total = PerfStats()
        per_domain: Dict[str, PerfStats] = {}
        communication = PerfStats()

        graph = compiled.graph
        for domain, program in compiled.programs.items():
            if domain in accelerated_domains:
                accelerator = self.accelerators[domain]
                stats = PerfStats()
                for fragment in program.fragments:
                    if fragment.attrs.get("crossing"):
                        # A logical transfer appears as a store (producer
                        # side) plus a load (consumer side); the host
                        # dispatch is paid once, on the load.
                        dma = self.dma_cost(
                            fragment.attrs.get("nbytes", 0),
                            dispatch=fragment.op == "load",
                        )
                        stats.add(dma)
                        communication.add(dma)
                    else:
                        stats.add(accelerator.fragment_cost(fragment))
            else:
                stats = self.host_domain_cost(graph, domain, hints)
                # The host still pays boundary transfers into/out of the
                # *accelerated* portion of the pipeline; host-to-host
                # hand-offs are plain memory and charge nothing extra.
                for fragment in program.fragments:
                    if not fragment.attrs.get("crossing"):
                        continue
                    other = fragment.attrs.get("from_domain") or fragment.attrs.get(
                        "to_domain"
                    )
                    if other in accelerated_domains:
                        dma = self.dma_cost(
                            fragment.attrs.get("nbytes", 0),
                            dispatch=fragment.op == "load",
                        )
                        stats.add(dma)
                        communication.add(dma)
            per_domain[domain] = stats
            total.add(stats)

        return SoCRunReport(
            total=total, per_domain=per_domain, communication=communication
        )

    def dma_cost(self, nbytes, dispatch=True):
        """PerfStats for one host-initiated DMA transfer of *nbytes*."""
        seconds = (HOST_DMA_DISPATCH_S if dispatch else 0.0) + safe_div(
            nbytes, SOC_DMA_BW
        )
        energy = nbytes * DRAM_PJ_PER_BYTE * 1e-12
        energy += 2.0 * seconds  # host manager ~2 W while orchestrating
        return PerfStats(
            seconds=seconds,
            dram_bytes=int(nbytes),
            energy_j=energy,
            breakdown={"dma": seconds},
        )

    def host_domain_cost(self, graph, domain, hints=None):
        """Cost of running one domain's kernels on the host CPU."""
        hints = hints or {}
        stats = PerfStats()
        for node in graph.nodes:
            if node.kind != COMPUTE:
                continue
            if (node.domain or graph.domain) != domain:
                continue
            descriptor = node.attrs.get("descriptor")
            if descriptor is None:
                continue
            op_scale = hints.get("op_scale", 1.0)
            model = self.host._model(domain)
            from .cpu import _node_bytes

            dram, onchip = _node_bytes(graph, node, op_scale)
            op_counts = {
                cls: count * op_scale for cls, count in descriptor.op_counts.items()
            }
            stats.add(model.kernel_cost(op_counts, dram, onchip, label=node.name))
        return stats
