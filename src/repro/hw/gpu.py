"""GPU baseline models: Titan Xp and Jetson Xavier AGX (Table VI).

Both use the same :class:`~repro.hw.cpu.BaselinePlatform` machinery as the
CPU: op/byte profiles from the lowered srDFG, per-domain achieved
efficiency, and — crucially for the paper's small-benchmark results — a
*kernel-launch overhead* per dispatched node. Batch-1 robotics/analytics
kernels underutilise a 3840-core part, which is exactly why MovieLens-100K
or ElecUse "are unable to fully utilize Titan Xp" (§V-B1); here that
manifests as launch-bound execution.
"""

from __future__ import annotations

from ..hw.cost import HardwareParams
from .cpu import BaselinePlatform

TITAN_XP_PARAMS = HardwareParams(
    name="Titan Xp",
    frequency_hz=1.58e9,
    # 3840 CUDA cores: one FMA each -> 3840 mul + 3840 add per cycle;
    # 960 SFUs for transcendentals.
    throughput={"alu": 3840.0, "mul": 3840.0, "div": 480.0, "nonlinear": 960.0},
    power_w=250.0,
    static_fraction=0.35,
    dram_bw=547e9,
    onchip_bw=3000e9,
    dispatch_overhead_s=2e-6,  # CUDA launch, pipelined across streams
    efficiency=1.0,
    system_power_w=20.0,  # host share + board DRAM
)

JETSON_XAVIER_PARAMS = HardwareParams(
    name="Jetson Xavier AGX",
    frequency_hz=1.37e9,
    throughput={"alu": 512.0, "mul": 512.0, "div": 64.0, "nonlinear": 128.0},
    power_w=30.0,
    static_fraction=0.35,
    dram_bw=137e9,
    onchip_bw=1000e9,
    dispatch_overhead_s=3e-6,
    efficiency=1.0,
    system_power_w=6.0,
)

#: Achieved fraction of peak per domain (cuBLAS, Enterprise BFS, cuFFT,
#: NVBLAS, cuDNN respectively). Batch-1 kernels leave most SMs idle on the
#: discrete part, hence the lower RBT/DA numbers for Titan Xp.
TITAN_EFFICIENCY = {
    "RBT": 0.002,
    "GA": 0.01,
    "DA": 0.02,
    "DSP": 0.05,
    "DL": 0.40,
}

#: Jetson's unified memory and cheap launches make it far better on
#: small batch-1 kernels than the discrete part, hence the higher factors.
JETSON_EFFICIENCY = {
    "RBT": 0.03,
    "GA": 0.03,
    "DA": 0.08,
    "DSP": 0.15,
    "DL": 0.50,
}


def make_titan_xp():
    """Discrete high-power GPU baseline."""
    return BaselinePlatform(TITAN_XP_PARAMS, TITAN_EFFICIENCY, name="Titan Xp")


def make_jetson():
    """Embedded low-power GPU baseline."""
    return BaselinePlatform(
        JETSON_XAVIER_PARAMS, JETSON_EFFICIENCY, name="Jetson Xavier AGX"
    )
