"""Roofline-style cost model shared by every hardware backend.

Each backend (accelerators, CPU, GPUs) is parameterised by a
:class:`HardwareParams` record built from Table VI of the paper. For a
compute node the model charges

``time = max(compute_time, memory_time) + dispatch_overhead``

where compute time divides the node's *actual* scalar-op counts (from
:mod:`repro.srdfg.opclass`) by the platform's per-class throughput, and
memory time divides the operand bytes by the relevant bandwidth. Operands
whose edges come from boundary variables (``input``/``output``/``state``/
``param``) move over DRAM; ``local`` intermediates stay on chip. This is
how the paper's type-modifier story becomes a measurable effect:
accelerators that pin ``state`` on-chip pay DRAM cost once, not per
statement.

Nothing here hard-codes a benchmark result; speedups emerge from unit
counts, frequencies, efficiencies, and the structure of the lowered srDFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..pmlang.builtins import COST_ALU, COST_DIV, COST_MUL, COST_NONLINEAR

#: DRAM access energy, picojoules per byte (LPDDR4-class figure).
DRAM_PJ_PER_BYTE = 20.0


def safe_div(numerator, denominator, default=0.0):
    """``numerator / denominator``, or *default* for a zero/None denominator.

    Cost models divide by bandwidths, rates, and measured totals that DSE
    sweeps and chaos runs can legitimately drive to zero; every ratio in
    ``repro.hw`` routes through this guard instead of crashing mid-report.
    """
    if denominator is None or denominator <= 0:
        return default
    return numerator / denominator
#: On-chip SRAM access energy, picojoules per byte.
SRAM_PJ_PER_BYTE = 1.0
#: Scalar-op energy by class, picojoules per op (45nm-class figures).
OP_PJ = {COST_ALU: 1.0, COST_MUL: 4.0, COST_DIV: 12.0, COST_NONLINEAR: 20.0}


@dataclass
class HardwareParams:
    """Static description of one execution platform."""

    name: str
    frequency_hz: float
    #: Scalar operations retired per cycle, by cost class.
    throughput: Dict[str, float]
    #: Board/package power in watts while running.
    power_w: float
    #: Idle/static fraction of power (energy still burned when stalled).
    static_fraction: float = 0.3
    #: Off-chip bandwidth, bytes per second.
    dram_bw: float = 10e9
    #: On-chip bandwidth, bytes per second.
    onchip_bw: float = 100e9
    #: Fixed cost charged per dispatched node/kernel, seconds.
    dispatch_overhead_s: float = 0.0
    #: Fraction of peak throughput sustained on real kernels.
    efficiency: float = 0.8
    #: Wall-power overhead beyond the device itself (host, DRAM, board
    #: regulators) charged for the full duration of a run. The paper's
    #: energy numbers are wall measurements, so a 3.4 W ASIC still burns
    #: system watts while it computes.
    system_power_w: float = 8.0
    #: On-chip memory capacity in bytes (Table VI: 512 KB for the ASICs'
    #: task memory, 64 MB eDRAM for GRAPHICIONADO, ~75 MB BRAM on the
    #: KCU1500). ``param``/``state`` footprints beyond this spill to DRAM
    #: every invocation. ``None`` disables the check.
    onchip_capacity_bytes: float = None

    def ops_per_second(self, cost_class):
        rate = self.throughput.get(cost_class)
        if rate is None or rate <= 0:
            return None
        return rate * self.frequency_hz * self.efficiency


@dataclass
class PerfStats:
    """Accumulated performance/energy estimate for one run."""

    seconds: float = 0.0
    op_count: int = 0
    dram_bytes: int = 0
    onchip_bytes: int = 0
    energy_j: float = 0.0
    kernels: int = 0
    breakdown: Dict[str, float] = field(default_factory=dict)

    def add(self, other):
        """Merge another PerfStats (sequential composition)."""
        self.seconds += other.seconds
        self.op_count += other.op_count
        self.dram_bytes += other.dram_bytes
        self.onchip_bytes += other.onchip_bytes
        self.energy_j += other.energy_j
        self.kernels += other.kernels
        for key, value in other.breakdown.items():
            self.breakdown[key] = self.breakdown.get(key, 0.0) + value
        return self

    def scaled(self, factor):
        """PerfStats for *factor* repetitions of this run."""
        return PerfStats(
            seconds=self.seconds * factor,
            op_count=int(self.op_count * factor),
            dram_bytes=int(self.dram_bytes * factor),
            onchip_bytes=int(self.onchip_bytes * factor),
            energy_j=self.energy_j * factor,
            kernels=int(self.kernels * factor),
            breakdown={k: v * factor for k, v in self.breakdown.items()},
        )

    @property
    def watts(self):
        return safe_div(self.energy_j, self.seconds)

    @property
    def performance_per_watt(self):
        """Work rate per watt (ops/s/W); used for PPW comparisons."""
        return safe_div(self.op_count, self.energy_j)

    def __repr__(self):
        return (
            f"PerfStats(seconds={self.seconds:.6g}, ops={self.op_count}, "
            f"dram_bytes={self.dram_bytes}, onchip_bytes={self.onchip_bytes}, "
            f"energy_j={self.energy_j:.6g}, kernels={self.kernels})"
        )


class RooflineModel:
    """Charges time/energy for op/byte workloads on a platform."""

    def __init__(self, params):
        self.params = params

    def kernel_cost(self, op_counts, dram_bytes, onchip_bytes, label="kernel"):
        """PerfStats for one kernel with the given op/byte profile."""
        params = self.params
        # Per-class units run concurrently (FMA ports next to SFUs on a
        # GPU, MAC chains next to CORDIC slices on an overlay), so the
        # kernel's compute time is the *slowest class*, roofline-style.
        compute_s = 0.0
        total_ops = 0
        for cost_class, count in op_counts.items():
            if count <= 0:
                continue
            total_ops += count
            rate = params.ops_per_second(cost_class)
            if rate is None:
                # Class not natively supported: emulate at ALU rate with a
                # steep penalty (e.g. transcendental on an integer ALU).
                rate = (params.ops_per_second(COST_ALU) or 1.0) / 16.0
            compute_s = max(compute_s, count / rate)
        memory_s = safe_div(dram_bytes, params.dram_bw) + safe_div(
            onchip_bytes, params.onchip_bw
        )
        busy_s = max(compute_s, memory_s)
        seconds = busy_s + params.dispatch_overhead_s

        op_energy = sum(
            count * OP_PJ.get(cost_class, 1.0) * 1e-12
            for cost_class, count in op_counts.items()
        )
        mem_energy = (
            dram_bytes * DRAM_PJ_PER_BYTE + onchip_bytes * SRAM_PJ_PER_BYTE
        ) * 1e-12
        static_energy = params.power_w * params.static_fraction * seconds
        # Dynamic board power scales with utilisation of the busy window.
        utilisation = safe_div(busy_s, seconds)
        dynamic_energy = (
            params.power_w * (1.0 - params.static_fraction) * seconds * utilisation
        )
        energy = (
            max(op_energy + mem_energy, 0.0)
            + static_energy
            + dynamic_energy
            + params.system_power_w * seconds
        )

        return PerfStats(
            seconds=seconds,
            op_count=total_ops,
            dram_bytes=int(dram_bytes),
            onchip_bytes=int(onchip_bytes),
            energy_j=energy,
            kernels=1,
            breakdown={label: seconds},
        )

    def transfer_cost(self, nbytes, label="dma"):
        """PerfStats for a DMA transfer of *nbytes* over DRAM."""
        seconds = safe_div(nbytes, self.params.dram_bw) + self.params.dispatch_overhead_s
        energy = (
            nbytes * DRAM_PJ_PER_BYTE * 1e-12
            + (self.params.power_w * self.params.static_fraction
               + self.params.system_power_w)
            * seconds
        )
        return PerfStats(
            seconds=seconds,
            dram_bytes=int(nbytes),
            energy_j=energy,
            kernels=0,
            breakdown={label: seconds},
        )
