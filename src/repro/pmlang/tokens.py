"""Token definitions shared by the PMLang lexer and parser."""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds. Keywords get their own kind so the parser never has to
# compare identifier text against reserved words.
NAME = "NAME"
INT = "INT"
FLOAT = "FLOAT"
STRING = "STRING"
OP = "OP"  # punctuation / operators, exact text in Token.text
EOF = "EOF"
KEYWORD = "KEYWORD"

#: PMLang type modifiers (Table I of the paper).
TYPE_MODIFIERS = ("input", "output", "state", "param")

#: PMLang scalar element types (Table I).
ELEMENT_TYPES = ("bin", "int", "float", "str", "complex")

#: Domain annotation keywords for component instantiations (§II-D).
DOMAINS = ("RBT", "GA", "DSP", "DA", "DL")

#: All reserved words.
KEYWORDS = frozenset(
    TYPE_MODIFIERS
    + ELEMENT_TYPES
    + DOMAINS
    + ("index", "reduction", "unroll")
)

#: Multi-character operators, longest first so the lexer is greedy.
MULTI_CHAR_OPS = ("==", "!=", "<=", ">=", "&&", "||")

#: Single-character operators and punctuation.
SINGLE_CHAR_OPS = "+-*/%^<>=!?:;,()[]{}."


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def is_op(self, text):
        """Return True when this token is the operator/punctuation *text*."""
        return self.kind == OP and self.text == text

    def is_keyword(self, text):
        """Return True when this token is the keyword *text*."""
        return self.kind == KEYWORD and self.text == text

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"
