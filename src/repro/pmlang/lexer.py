"""Hand-written lexer for PMLang.

PMLang is small enough that a character-at-a-time scanner is clearer than a
regex table and produces precise error positions. Comments use ``//`` to the
end of the line (as in the paper's Fig 4 listings).
"""

from __future__ import annotations

from ..errors import PMLangSyntaxError
from .tokens import (
    EOF,
    FLOAT,
    INT,
    KEYWORD,
    KEYWORDS,
    MULTI_CHAR_OPS,
    NAME,
    OP,
    SINGLE_CHAR_OPS,
    STRING,
    Token,
)


def tokenize(source):
    """Convert PMLang *source* text into a list of :class:`Token`.

    The returned list always ends with a single EOF token. Raises
    :class:`PMLangSyntaxError` on any character that cannot start a token.
    """
    tokens = []
    line = 1
    column = 1
    i = 0
    n = len(source)

    def error(message):
        raise PMLangSyntaxError(message, line=line, column=column)

    while i < n:
        ch = source[i]

        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # Line comments.
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            while i < n and source[i] != "\n":
                i += 1
            continue

        start_column = column

        # Identifiers and keywords.
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = KEYWORD if text in KEYWORDS else NAME
            tokens.append(Token(kind, text, line, start_column))
            column += j - i
            i = j
            continue

        # Numeric literals: integers, decimals, and exponent forms.
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == ".":
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            tokens.append(Token(FLOAT if is_float else INT, text, line, start_column))
            column += j - i
            i = j
            continue

        # String literals (double-quoted, no escapes beyond \" and \\).
        if ch == '"':
            j = i + 1
            chars = []
            while j < n and source[j] != '"':
                if source[j] == "\n":
                    error("unterminated string literal")
                if source[j] == "\\" and j + 1 < n and source[j + 1] in ('"', "\\"):
                    chars.append(source[j + 1])
                    j += 2
                else:
                    chars.append(source[j])
                    j += 1
            if j >= n:
                error("unterminated string literal")
            tokens.append(Token(STRING, "".join(chars), line, start_column))
            column += (j + 1) - i
            i = j + 1
            continue

        # Multi-character operators before single-character ones.
        matched = None
        for op in MULTI_CHAR_OPS:
            if source.startswith(op, i):
                matched = op
                break
        if matched is not None:
            tokens.append(Token(OP, matched, line, start_column))
            i += len(matched)
            column += len(matched)
            continue

        if ch in SINGLE_CHAR_OPS:
            tokens.append(Token(OP, ch, line, start_column))
            i += 1
            column += 1
            continue

        error(f"unexpected character {ch!r}")

    tokens.append(Token(EOF, "", line, column))
    return tokens
