"""Rendering ASTs back to PMLang source.

The inverse of the parser: ``render_program(parse(src))`` is semantically
identical source (property-tested). Used for srDFG snapshots (statements
serialise as PMLang text), for decompiling transformed graphs back into
readable programs, and in error tooling.
"""

from __future__ import annotations

from . import ast_nodes as ast

#: Binding strength per binary operator (matches the parser's precedence).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 3,
    ">": 3,
    "<=": 3,
    ">=": 3,
    "+": 4,
    "-": 4,
    "*": 5,
    "/": 5,
    "%": 5,
    "^": 7,
}
_UNARY_PRECEDENCE = 6
_TERNARY_PRECEDENCE = 0


def _expr_precedence(expr):
    if isinstance(expr, ast.BinOp):
        return _PRECEDENCE.get(expr.op, 4)
    if isinstance(expr, ast.UnaryOp):
        return _UNARY_PRECEDENCE
    if isinstance(expr, ast.Ternary):
        return _TERNARY_PRECEDENCE
    return 10  # atoms


def render_expr(expr, parent_precedence=0):
    """Render an expression, parenthesising only where binding requires."""
    if expr is None:
        return ""
    if isinstance(expr, ast.Literal):
        return repr(expr.value) if not isinstance(expr.value, str) else f'"{expr.value}"'
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Indexed):
        subscripts = "".join(f"[{render_expr(index)}]" for index in expr.indices)
        return f"{expr.base}{subscripts}"
    if isinstance(expr, ast.UnaryOp):
        inner = render_expr(expr.operand, _UNARY_PRECEDENCE + 1)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_precedence > _UNARY_PRECEDENCE else text
    if isinstance(expr, ast.BinOp):
        mine = _expr_precedence(expr)
        left = render_expr(expr.left, mine)
        # Right operand binds one tighter: -, /, % are left-associative.
        right = render_expr(expr.right, mine + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_precedence > mine else text
    if isinstance(expr, ast.Ternary):
        text = (
            f"{render_expr(expr.cond, 1)} ? {render_expr(expr.then)} : "
            f"{render_expr(expr.other)}"
        )
        return f"({text})" if parent_precedence > _TERNARY_PRECEDENCE else text
    if isinstance(expr, ast.FuncCall):
        arguments = ", ".join(render_expr(arg) for arg in expr.args)
        return f"{expr.func}({arguments})"
    if isinstance(expr, ast.ReductionCall):
        groups = []
        for spec in expr.indices:
            if spec.predicate is not None:
                groups.append(f"[{spec.name}: {render_expr(spec.predicate)}]")
            else:
                groups.append(f"[{spec.name}]")
        return f"{expr.op}{''.join(groups)}({render_expr(expr.arg)})"
    raise TypeError(f"cannot render {type(expr).__name__}")


def render_stmt(stmt, indent="  "):
    """Render one statement (with trailing semicolon / block)."""
    if isinstance(stmt, ast.IndexDecl):
        specs = ", ".join(
            f"{spec.name}[{render_expr(spec.low)}:{render_expr(spec.high)}]"
            for spec in stmt.specs
        )
        return f"{indent}index {specs};"
    if isinstance(stmt, ast.VarDecl):
        items = ", ".join(
            item.name + "".join(f"[{render_expr(dim)}]" for dim in item.dims)
            for item in stmt.items
        )
        return f"{indent}{stmt.dtype} {items};"
    if isinstance(stmt, ast.Assign):
        target = stmt.target + "".join(
            f"[{render_expr(index)}]" for index in stmt.target_indices
        )
        return f"{indent}{target} = {render_expr(stmt.value)};"
    if isinstance(stmt, ast.ComponentCall):
        prefix = f"{stmt.domain}: " if stmt.domain else ""
        arguments = ", ".join(render_expr(arg) for arg in stmt.args)
        return f"{indent}{prefix}{stmt.component}({arguments});"
    if isinstance(stmt, ast.Unroll):
        header = (
            f"{indent}unroll {stmt.var}"
            f"[{render_expr(stmt.low)}:{render_expr(stmt.high)}] {{"
        )
        body = "\n".join(render_stmt(inner, indent + "  ") for inner in stmt.body)
        return f"{header}\n{body}\n{indent}}}"
    raise TypeError(f"cannot render {type(stmt).__name__}")


def render_component(component):
    """Render a full component definition."""
    arguments = ",\n     ".join(
        f"{arg.modifier} {arg.dtype} {arg.name}"
        + "".join(f"[{render_expr(dim)}]" for dim in arg.dims)
        for arg in component.args
    )
    body = "\n".join(render_stmt(stmt) for stmt in component.body)
    return f"{component.name}({arguments}) {{\n{body}\n}}"


def render_reduction(definition):
    first, second = definition.params
    return (
        f"reduction {definition.name}({first},{second}) = "
        f"{render_expr(definition.expr)};"
    )


def render_program(program):
    """Render a whole Program back to PMLang source."""
    pieces = [render_reduction(d) for d in program.reductions.values()]
    pieces += [render_component(c) for c in program.components.values()]
    return "\n\n".join(pieces) + "\n"


def decompile_graph(graph):
    """Render a *lowered* (flat) srDFG as a single PMLang component.

    Reconstructs declarations from the graph's var metadata and emits the
    compute statements in topological order — a readable view of what the
    compiler actually scheduled.
    """
    from ..srdfg.graph import COMPUTE, VAR

    args = []
    locals_ = []
    for node in graph.nodes:
        if node.kind != VAR:
            continue
        dims = "".join(f"[{dim}]" for dim in node.attrs.get("shape", ()))
        modifier = node.attrs.get("modifier", "local")
        dtype = node.attrs.get("dtype", "float")
        if modifier == "local":
            locals_.append(f"  {dtype} {node.name}{dims};")
        else:
            args.append(f"{modifier} {dtype} {node.name}{dims}")

    statements = []
    declared_indices = set()
    for node in graph.topological_order():
        if node.kind != COMPUTE:
            continue
        stmt = node.attrs["stmt"]
        ranges = node.attrs.get("index_ranges", {})
        needed = sorted(
            name
            for name in ast.expr_names(stmt.value)
            | {n for i in stmt.target_indices for n in ast.expr_names(i)}
            if name in ranges and name not in declared_indices
        )
        for name in needed:
            low, high = ranges[name]
            statements.append(f"  index {name}[{low}:{high}];")
            declared_indices.add(name)
        statements.append(render_stmt(stmt))

    header = f"{graph.name}({', '.join(args)}) {{"
    return "\n".join([header, *locals_, *statements, "}"])
