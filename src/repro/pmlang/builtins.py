"""Built-in scalar functions and group reductions of PMLang.

§II-C of the paper lists non-linear operations (sine/cosine, gaussian,
sigmoid/ReLU, ...) and group reductions (sum, prod, max, ...). Each entry
here pairs the language-level name with a vectorised numpy implementation
used by the srDFG interpreter and with a cost class consumed by the
hardware models (a ``sigmoid`` costs more than an ``add`` on every target
that lacks a dedicated unit).
"""

from __future__ import annotations

import numpy as np
from scipy import special as _special

#: Cost classes let hardware models price operations without knowing
#: language-level names: "alu" (add/sub/cmp/...), "mul", "div", and
#: "nonlinear" (transcendentals, usually a lookup table or multi-cycle unit).
COST_ALU = "alu"
COST_MUL = "mul"
COST_DIV = "div"
COST_NONLINEAR = "nonlinear"


def _gaussian(x):
    """The Gaussian kernel exp(-x^2) used by robotics/DSP workloads."""
    return np.exp(-np.square(x))


def _relu(x):
    return np.maximum(x, 0.0)


def _sigmoid(x):
    return _special.expit(x)


def _phi(x):
    """Standard normal CDF (Black-Scholes uses this heavily)."""
    return _special.ndtr(x)


def _rsqrt(x):
    return 1.0 / np.sqrt(x)


#: name -> (numpy implementation, arity, cost class)
SCALAR_FUNCTIONS = {
    "sin": (np.sin, 1, COST_NONLINEAR),
    "cos": (np.cos, 1, COST_NONLINEAR),
    "tan": (np.tan, 1, COST_NONLINEAR),
    "asin": (np.arcsin, 1, COST_NONLINEAR),
    "acos": (np.arccos, 1, COST_NONLINEAR),
    "atan": (np.arctan, 1, COST_NONLINEAR),
    "atan2": (np.arctan2, 2, COST_NONLINEAR),
    "exp": (np.exp, 1, COST_NONLINEAR),
    "ln": (np.log, 1, COST_NONLINEAR),
    "log": (np.log, 1, COST_NONLINEAR),
    "log2": (np.log2, 1, COST_NONLINEAR),
    "sqrt": (np.sqrt, 1, COST_NONLINEAR),
    "rsqrt": (_rsqrt, 1, COST_NONLINEAR),
    "sigmoid": (_sigmoid, 1, COST_NONLINEAR),
    "tanh": (np.tanh, 1, COST_NONLINEAR),
    "relu": (_relu, 1, COST_ALU),
    "gaussian": (_gaussian, 1, COST_NONLINEAR),
    "phi": (_phi, 1, COST_NONLINEAR),
    "abs": (np.abs, 1, COST_ALU),
    "floor": (np.floor, 1, COST_ALU),
    "ceil": (np.ceil, 1, COST_ALU),
    "sign": (np.sign, 1, COST_ALU),
    "pow": (np.power, 2, COST_NONLINEAR),
    "fmin": (np.minimum, 2, COST_ALU),
    "fmax": (np.maximum, 2, COST_ALU),
}


#: Built-in group reductions: name -> (reduce-over-axes implementation,
#: identity element or None when the reduction needs at least one element).
def _reduce_sum(values, axes):
    return np.sum(values, axis=axes)


def _reduce_prod(values, axes):
    return np.prod(values, axis=axes)


def _reduce_max(values, axes):
    return np.max(values, axis=axes)


def _reduce_min(values, axes):
    return np.min(values, axis=axes)


def _flatten_axes(values, axes):
    """Move *axes* to the back and flatten them into one axis."""
    kept = [axis for axis in range(values.ndim) if axis not in axes]
    rearranged = np.transpose(values, kept + list(axes))
    lead = rearranged.shape[: len(kept)]
    return rearranged.reshape(lead + (-1,))


def _reduce_argmax(values, axes):
    return np.argmax(_flatten_axes(values, axes), axis=-1)


def _reduce_argmin(values, axes):
    return np.argmin(_flatten_axes(values, axes), axis=-1)


GROUP_REDUCTIONS = {
    "sum": (_reduce_sum, 0.0),
    "prod": (_reduce_prod, 1.0),
    "max": (_reduce_max, None),
    "min": (_reduce_min, None),
    "argmax": (_reduce_argmax, None),
    "argmin": (_reduce_argmin, None),
}


#: Cost class per binary operator text.
BINOP_COST = {
    "+": COST_ALU,
    "-": COST_ALU,
    "*": COST_MUL,
    "/": COST_DIV,
    "%": COST_DIV,
    "^": COST_NONLINEAR,
    "==": COST_ALU,
    "!=": COST_ALU,
    "<": COST_ALU,
    ">": COST_ALU,
    "<=": COST_ALU,
    ">=": COST_ALU,
    "&&": COST_ALU,
    "||": COST_ALU,
}


def is_builtin_function(name):
    """True when *name* is a built-in scalar function."""
    return name in SCALAR_FUNCTIONS


def is_builtin_reduction(name):
    """True when *name* is a built-in group reduction."""
    return name in GROUP_REDUCTIONS


def function_cost_class(name):
    """Cost class for built-in function *name* ("alu"/"mul"/"div"/"nonlinear")."""
    return SCALAR_FUNCTIONS[name][2]
