"""Recursive-descent parser for PMLang.

Grammar (reconstructed from Fig 4 and §II of the paper; ``unroll`` is a
reproduction extension documented in DESIGN.md)::

    program        := (component | reduction_def)*
    reduction_def  := 'reduction' NAME '(' NAME ',' NAME ')' '=' expr ';'
    component      := NAME '(' arg (',' arg)* ')' '{' stmt* '}'
    arg            := modifier type NAME ('[' expr ']')*
    stmt           := index_decl | var_decl | assign | component_call | unroll
    index_decl     := 'index' index_spec (',' index_spec)* ';'
    index_spec     := NAME '[' expr ':' expr ']'
    var_decl       := type declarator (',' declarator)* ';'
    declarator     := NAME ('[' expr ']')*
    assign         := NAME ('[' expr ']')* '=' expr ';'
    component_call := (DOMAIN ':')? NAME '(' expr (',' expr)* ')' ';'
    unroll         := 'unroll' NAME '[' expr ':' expr ']' '{' stmt* '}'

    expr           := ternary
    ternary        := logic_or ('?' expr ':' expr)?
    logic_or       := logic_and ('||' logic_and)*
    logic_and      := comparison ('&&' comparison)*
    comparison     := additive (('=='|'!='|'<'|'>'|'<='|'>=') additive)?
    additive       := multiplicative (('+'|'-') multiplicative)*
    multiplicative := unary (('*'|'/'|'%') unary)*
    unary          := ('-'|'!') unary | power
    power          := primary ('^' unary)?
    primary        := literal | '(' expr ')' | reduction_call
                    | NAME '(' expr_list ')'          -- built-in function
                    | NAME ('[' expr ']')*            -- (indexed) variable
    reduction_call := NAME ('[' NAME (':' expr)? ']')+ '(' expr ')'

Reduction calls are disambiguated from indexed accesses by tentative
parsing with backtracking: ``sum[i](...)`` has a parenthesised argument
after its bracket groups while ``A[i]`` does not.
"""

from __future__ import annotations

from ..errors import PMLangSyntaxError
from . import ast_nodes as ast
from .lexer import tokenize
from .tokens import (
    DOMAINS,
    ELEMENT_TYPES,
    EOF,
    FLOAT,
    INT,
    KEYWORD,
    NAME,
    STRING,
    TYPE_MODIFIERS,
)

#: Reduction operators always recognised by the parser. User-defined
#: reductions are additionally registered as they are parsed.
BUILTIN_REDUCTIONS = ("sum", "prod", "max", "min", "argmax", "argmin")


class _Parser:
    """Stateful cursor over the token list with one-token lookahead."""

    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0
        self.reduction_names = set(BUILTIN_REDUCTIONS)

    # -- token plumbing ----------------------------------------------------

    @property
    def current(self):
        return self.tokens[self.pos]

    def peek(self, offset=1):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def error(self, message, token=None):
        token = token or self.current
        raise PMLangSyntaxError(message, line=token.line, column=token.column)

    def expect_op(self, text):
        if not self.current.is_op(text):
            self.error(f"expected {text!r}, found {self.current.text!r}")
        return self.advance()

    def expect_name(self):
        if self.current.kind != NAME:
            self.error(f"expected identifier, found {self.current.text!r}")
        return self.advance()

    def accept_op(self, text):
        if self.current.is_op(text):
            self.advance()
            return True
        return False

    # -- top level ----------------------------------------------------------

    def parse_program(self):
        program = ast.Program()
        while self.current.kind != EOF:
            if self.current.is_keyword("reduction"):
                definition = self.parse_reduction_def()
                if definition.name in program.reductions:
                    self.error(f"duplicate reduction {definition.name!r}")
                program.reductions[definition.name] = definition
            elif self.current.kind == NAME:
                component = self.parse_component()
                if component.name in program.components:
                    self.error(f"duplicate component {component.name!r}")
                program.components[component.name] = component
            else:
                self.error(
                    f"expected component or reduction definition, found {self.current.text!r}"
                )
        return program

    def parse_reduction_def(self):
        start = self.advance()  # 'reduction'
        name = self.expect_name().text
        self.expect_op("(")
        first = self.expect_name().text
        self.expect_op(",")
        second = self.expect_name().text
        self.expect_op(")")
        self.expect_op("=")
        expr = self.parse_expr()
        self.expect_op(";")
        self.reduction_names.add(name)
        return ast.ReductionDef(name=name, params=(first, second), expr=expr, line=start.line)

    def parse_component(self):
        name_token = self.expect_name()
        self.expect_op("(")
        args = []
        if not self.current.is_op(")"):
            args.append(self.parse_arg_decl())
            while self.accept_op(","):
                args.append(self.parse_arg_decl())
        self.expect_op(")")
        self.expect_op("{")
        body = []
        while not self.current.is_op("}"):
            if self.current.kind == EOF:
                self.error("unterminated component body (missing '}')")
            body.append(self.parse_stmt())
        self.expect_op("}")
        return ast.Component(
            name=name_token.text, args=tuple(args), body=tuple(body), line=name_token.line
        )

    def parse_arg_decl(self):
        token = self.current
        if not (token.kind == KEYWORD and token.text in TYPE_MODIFIERS):
            self.error(f"expected type modifier, found {token.text!r}")
        modifier = self.advance().text
        dtype = self.parse_element_type()
        name = self.expect_name()
        dims = self.parse_dims()
        return ast.ArgDecl(
            modifier=modifier, dtype=dtype, name=name.text, dims=dims, line=token.line
        )

    def parse_element_type(self):
        token = self.current
        if not (token.kind == KEYWORD and token.text in ELEMENT_TYPES):
            self.error(f"expected element type, found {token.text!r}")
        return self.advance().text

    def parse_dims(self):
        dims = []
        while self.current.is_op("["):
            self.advance()
            dims.append(self.parse_expr())
            self.expect_op("]")
        return tuple(dims)

    # -- statements ----------------------------------------------------------

    def parse_stmt(self):
        token = self.current
        if token.is_keyword("index"):
            return self.parse_index_decl()
        if token.is_keyword("unroll"):
            return self.parse_unroll()
        if token.kind == KEYWORD and token.text in ELEMENT_TYPES:
            return self.parse_var_decl()
        if token.kind == KEYWORD and token.text in DOMAINS:
            domain = self.advance().text
            self.expect_op(":")
            return self.parse_component_call(domain, token.line)
        if token.kind == NAME:
            # Lookahead: NAME '(' is a component instantiation; anything else
            # (NAME '=' or NAME '[') is a formula assignment.
            if self.peek().is_op("("):
                return self.parse_component_call(None, token.line)
            return self.parse_assign()
        self.error(f"expected statement, found {token.text!r}")

    def parse_index_decl(self):
        start = self.advance()  # 'index'
        specs = [self.parse_index_spec()]
        while self.accept_op(","):
            specs.append(self.parse_index_spec())
        self.expect_op(";")
        return ast.IndexDecl(specs=tuple(specs), line=start.line)

    def parse_index_spec(self):
        name = self.expect_name()
        self.expect_op("[")
        low = self.parse_expr()
        self.expect_op(":")
        high = self.parse_expr()
        self.expect_op("]")
        return ast.IndexSpec(name=name.text, low=low, high=high)

    def parse_var_decl(self):
        dtype_token = self.current
        dtype = self.parse_element_type()
        items = [self.parse_declarator()]
        while self.accept_op(","):
            items.append(self.parse_declarator())
        self.expect_op(";")
        return ast.VarDecl(dtype=dtype, items=tuple(items), line=dtype_token.line)

    def parse_declarator(self):
        name = self.expect_name()
        dims = self.parse_dims()
        return ast.VarDeclItem(name=name.text, dims=dims)

    def parse_assign(self):
        name = self.expect_name()
        indices = self.parse_dims()
        self.expect_op("=")
        value = self.parse_expr()
        self.expect_op(";")
        return ast.Assign(
            target=name.text, target_indices=indices, value=value, line=name.line
        )

    def parse_component_call(self, domain, line):
        name = self.expect_name()
        self.expect_op("(")
        args = []
        if not self.current.is_op(")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")
        self.expect_op(";")
        return ast.ComponentCall(
            domain=domain, component=name.text, args=tuple(args), line=line
        )

    def parse_unroll(self):
        start = self.advance()  # 'unroll'
        var = self.expect_name().text
        self.expect_op("[")
        low = self.parse_expr()
        self.expect_op(":")
        high = self.parse_expr()
        self.expect_op("]")
        self.expect_op("{")
        body = []
        while not self.current.is_op("}"):
            if self.current.kind == EOF:
                self.error("unterminated unroll body (missing '}')")
            body.append(self.parse_stmt())
        self.expect_op("}")
        return ast.Unroll(var=var, low=low, high=high, body=tuple(body), line=start.line)

    # -- expressions -----------------------------------------------------------

    def parse_expr(self):
        return self.parse_ternary()

    def parse_ternary(self):
        cond = self.parse_logic_or()
        if self.accept_op("?"):
            then = self.parse_expr()
            self.expect_op(":")
            other = self.parse_expr()
            return ast.Ternary(cond=cond, then=then, other=other, line=cond.line)
        return cond

    def parse_logic_or(self):
        left = self.parse_logic_and()
        while self.current.is_op("||"):
            self.advance()
            right = self.parse_logic_and()
            left = ast.BinOp(op="||", left=left, right=right, line=left.line)
        return left

    def parse_logic_and(self):
        left = self.parse_comparison()
        while self.current.is_op("&&"):
            self.advance()
            right = self.parse_comparison()
            left = ast.BinOp(op="&&", left=left, right=right, line=left.line)
        return left

    def parse_comparison(self):
        left = self.parse_additive()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.current.is_op(op):
                self.advance()
                right = self.parse_additive()
                return ast.BinOp(op=op, left=left, right=right, line=left.line)
        return left

    def parse_additive(self):
        left = self.parse_multiplicative()
        while self.current.is_op("+") or self.current.is_op("-"):
            op = self.advance().text
            right = self.parse_multiplicative()
            left = ast.BinOp(op=op, left=left, right=right, line=left.line)
        return left

    def parse_multiplicative(self):
        left = self.parse_unary()
        while self.current.is_op("*") or self.current.is_op("/") or self.current.is_op("%"):
            op = self.advance().text
            right = self.parse_unary()
            left = ast.BinOp(op=op, left=left, right=right, line=left.line)
        return left

    def parse_unary(self):
        token = self.current
        if token.is_op("-") or token.is_op("!"):
            self.advance()
            operand = self.parse_unary()
            return ast.UnaryOp(op=token.text, operand=operand, line=token.line)
        return self.parse_power()

    def parse_power(self):
        base = self.parse_primary()
        if self.accept_op("^"):
            exponent = self.parse_unary()
            return ast.BinOp(op="^", left=base, right=exponent, line=base.line)
        return base

    def parse_primary(self):
        token = self.current
        if token.kind == INT:
            self.advance()
            return ast.Literal(value=int(token.text), line=token.line)
        if token.kind == FLOAT:
            self.advance()
            return ast.Literal(value=float(token.text), line=token.line)
        if token.kind == STRING:
            self.advance()
            return ast.Literal(value=token.text, line=token.line)
        if token.is_op("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_op(")")
            return inner
        if token.kind == NAME:
            return self.parse_name_expr()
        self.error(f"expected expression, found {token.text!r}")

    def parse_name_expr(self):
        name = self.expect_name()

        # Function call: NAME '(' args ')'.
        if self.current.is_op("("):
            self.advance()
            args = []
            if not self.current.is_op(")"):
                args.append(self.parse_expr())
                while self.accept_op(","):
                    args.append(self.parse_expr())
            self.expect_op(")")
            return ast.FuncCall(func=name.text, args=tuple(args), line=name.line)

        # Try a reduction call first; fall back to indexed access. The
        # attempt is made for any name so that misspelled reductions still
        # parse and fail in semantic analysis with a helpful message.
        if self.current.is_op("["):
            saved = self.pos
            try:
                reduction = self._try_reduction_call(name)
            except PMLangSyntaxError:
                reduction = None
            if reduction is not None:
                return reduction
            self.pos = saved

        if self.current.is_op("["):
            indices = self.parse_dims()
            return ast.Indexed(base=name.text, indices=indices, line=name.line)

        return ast.Name(id=name.text, line=name.line)

    def _try_reduction_call(self, name):
        """Tentatively parse ``name[idx][idx: pred]...(expr)``.

        Returns None (without consuming a committed prefix) when the
        bracketed groups are not of reduction-index form or no parenthesised
        argument follows, in which case the caller backtracks and re-parses
        as an indexed access.
        """
        specs = []
        while self.current.is_op("["):
            self.advance()
            if self.current.kind != NAME:
                return None
            index_name = self.advance().text
            predicate = None
            if self.accept_op(":"):
                predicate = self.parse_expr()
            if not self.current.is_op("]"):
                return None
            self.advance()
            specs.append(ast.ReductionIndex(name=index_name, predicate=predicate))
        if not specs or not self.current.is_op("("):
            return None
        self.advance()
        arg = self.parse_expr()
        if not self.current.is_op(")"):
            return None
        self.advance()
        return ast.ReductionCall(op=name.text, indices=tuple(specs), arg=arg, line=name.line)


def parse(source):
    """Parse PMLang *source* text into an :class:`ast_nodes.Program`."""
    return _Parser(source).parse_program()
