"""Semantic analysis for PMLang programs.

Validates the static rules implied by Table I and §II of the paper:

* ``input`` and ``param`` arguments are read-only inside a component;
  ``state`` and ``output`` may be read and written. (Table I describes
  ``output`` as write-only, but the paper's own Fig 4 reads the output
  argument ``ctrl_mdl`` inside ``update_ctrl_model``, so we follow the
  listing rather than the table: within the defining component an output
  behaves like state; externally it is write-only.)
* Every referenced name must be an argument, a local declaration, an index
  variable, a dimension symbol, or an unroll binder.
* Component instantiations must name a defined component with matching
  arity, and actuals bound to ``output``/``state`` formals must be plain
  writable variables.
* Function calls must name a built-in with the right arity; reduction
  calls must name a built-in or user-defined reduction.
* Instantiation may not be (mutually) recursive — srDFGs are statically
  expanded, so the call graph must be a DAG.

Analysis produces a :class:`ProgramInfo` with a per-component symbol table
the srDFG builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import PMLangSemanticError
from . import ast_nodes as ast
from .builtins import SCALAR_FUNCTIONS, is_builtin_function, is_builtin_reduction

# Symbol kinds.
KIND_ARG = "arg"
KIND_LOCAL = "local"
KIND_INDEX = "index"
KIND_DIM = "dim"
KIND_UNROLL = "unroll"


@dataclass
class Symbol:
    """A named entity visible inside a component."""

    name: str
    kind: str
    dtype: Optional[str] = None
    modifier: Optional[str] = None
    dims: Tuple[ast.Expr, ...] = ()


@dataclass
class ComponentInfo:
    """Resolved symbol table and instantiation list for one component."""

    component: ast.Component
    symbols: Dict[str, Symbol] = field(default_factory=dict)
    calls: Tuple[str, ...] = ()


@dataclass
class ProgramInfo:
    """Result of semantic analysis over a whole program."""

    program: ast.Program
    components: Dict[str, ComponentInfo] = field(default_factory=dict)


def _error(message, line=None):
    suffix = f" (line {line})" if line else ""
    raise PMLangSemanticError(f"{message}{suffix}")


class _ComponentChecker:
    """Checks a single component body against the symbol rules."""

    def __init__(self, component, program):
        self.component = component
        self.program = program
        self.symbols = {}
        self.calls = []

    def run(self):
        self._declare_args()
        self._check_body(self.component.body, unroll_vars=())
        return ComponentInfo(
            component=self.component, symbols=self.symbols, calls=tuple(self.calls)
        )

    # -- declarations -------------------------------------------------------

    def _declare(self, symbol, line=None):
        if symbol.name in self.symbols:
            _error(
                f"duplicate declaration of {symbol.name!r} in component "
                f"{self.component.name!r}",
                line,
            )
        self.symbols[symbol.name] = symbol

    def _declare_args(self):
        for arg in self.component.args:
            self._declare(
                Symbol(
                    name=arg.name,
                    kind=KIND_ARG,
                    dtype=arg.dtype,
                    modifier=arg.modifier,
                    dims=arg.dims,
                ),
                arg.line,
            )
        # Dimension symbols: any bare name in an argument's dims that is not
        # itself an argument (e.g. ``a`` in ``input float pos[a]``).
        for arg in self.component.args:
            for dim in arg.dims:
                for name in ast.expr_names(dim):
                    if name not in self.symbols:
                        self._declare(Symbol(name=name, kind=KIND_DIM), arg.line)

    # -- statements -----------------------------------------------------------

    def _check_body(self, body, unroll_vars):
        for stmt in body:
            self._check_stmt(stmt, unroll_vars)

    def _check_stmt(self, stmt, unroll_vars):
        if isinstance(stmt, ast.IndexDecl):
            for spec in stmt.specs:
                self._declare(Symbol(name=spec.name, kind=KIND_INDEX), stmt.line)
                self._check_read_expr(spec.low, unroll_vars, stmt.line)
                self._check_read_expr(spec.high, unroll_vars, stmt.line)
        elif isinstance(stmt, ast.VarDecl):
            for item in stmt.items:
                self._declare(
                    Symbol(
                        name=item.name, kind=KIND_LOCAL, dtype=stmt.dtype, dims=item.dims
                    ),
                    stmt.line,
                )
                for dim in item.dims:
                    self._check_read_expr(dim, unroll_vars, stmt.line)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, unroll_vars)
        elif isinstance(stmt, ast.ComponentCall):
            self._check_call(stmt, unroll_vars)
        elif isinstance(stmt, ast.Unroll):
            self._check_read_expr(stmt.low, unroll_vars, stmt.line)
            self._check_read_expr(stmt.high, unroll_vars, stmt.line)
            if stmt.var in self.symbols:
                _error(
                    f"unroll binder {stmt.var!r} shadows an existing name", stmt.line
                )
            self._check_body(stmt.body, unroll_vars + (stmt.var,))
        else:  # pragma: no cover - parser only produces the above
            _error(f"unknown statement type {type(stmt).__name__}", stmt.line)

    def _check_assign(self, stmt, unroll_vars):
        symbol = self._lookup(stmt.target, unroll_vars, stmt.line)
        if symbol is not None:
            if symbol.kind == KIND_ARG and symbol.modifier in ("input", "param"):
                _error(
                    f"cannot write to {symbol.modifier} argument {stmt.target!r}",
                    stmt.line,
                )
            if symbol.kind in (KIND_INDEX, KIND_DIM, KIND_UNROLL):
                _error(f"cannot assign to {symbol.kind} {stmt.target!r}", stmt.line)
        for index in stmt.target_indices:
            self._check_read_expr(index, unroll_vars, stmt.line)
        self._check_read_expr(stmt.value, unroll_vars, stmt.line)

    def _check_call(self, stmt, unroll_vars):
        callee = self.program.components.get(stmt.component)
        if callee is None:
            _error(f"instantiation of unknown component {stmt.component!r}", stmt.line)
        if len(stmt.args) != len(callee.args):
            _error(
                f"component {stmt.component!r} expects {len(callee.args)} "
                f"arguments, got {len(stmt.args)}",
                stmt.line,
            )
        for actual, formal in zip(stmt.args, callee.args):
            if formal.modifier in ("output", "state"):
                if not isinstance(actual, ast.Name):
                    _error(
                        f"argument for {formal.modifier} parameter "
                        f"{formal.name!r} of {stmt.component!r} must be a "
                        "variable name",
                        stmt.line,
                    )
                symbol = self._lookup(actual.id, unroll_vars, stmt.line)
                if symbol is not None and symbol.kind == KIND_ARG:
                    if formal.modifier == "output" and symbol.modifier in (
                        "input",
                        "param",
                    ):
                        _error(
                            f"cannot bind {symbol.modifier} argument "
                            f"{actual.id!r} to output parameter {formal.name!r}",
                            stmt.line,
                        )
            else:
                self._check_read_expr(actual, unroll_vars, stmt.line)
        self.calls.append(stmt.component)

    # -- expressions -------------------------------------------------------------

    def _lookup(self, name, unroll_vars, line):
        if name in unroll_vars:
            return Symbol(name=name, kind=KIND_UNROLL)
        symbol = self.symbols.get(name)
        if symbol is None:
            _error(
                f"undeclared name {name!r} in component {self.component.name!r}", line
            )
        return symbol

    def _check_read_expr(self, expr, unroll_vars, line, reduction_params=()):
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Name):
                if node.id in reduction_params:
                    continue
                self._lookup(node.id, unroll_vars, node.line or line)
            elif isinstance(node, ast.Indexed):
                self._lookup(node.base, unroll_vars, node.line or line)
            elif isinstance(node, ast.FuncCall):
                if not is_builtin_function(node.func):
                    _error(f"unknown function {node.func!r}", node.line or line)
                arity = SCALAR_FUNCTIONS[node.func][1]
                if len(node.args) != arity:
                    _error(
                        f"function {node.func!r} expects {arity} argument(s), "
                        f"got {len(node.args)}",
                        node.line or line,
                    )
            elif isinstance(node, ast.ReductionCall):
                if not (
                    is_builtin_reduction(node.op)
                    or node.op in self.program.reductions
                ):
                    _error(f"unknown reduction {node.op!r}", node.line or line)
                for spec in node.indices:
                    self._lookup(spec.name, unroll_vars, node.line or line)


def _check_reduction_def(definition):
    allowed = set(definition.params)
    for node in ast.walk_expr(definition.expr):
        if isinstance(node, ast.Name) and node.id not in allowed:
            _error(
                f"reduction {definition.name!r} may only reference its "
                f"parameters {definition.params}",
                definition.line,
            )
        if isinstance(node, (ast.Indexed, ast.ReductionCall)):
            _error(
                f"reduction {definition.name!r} must be a scalar expression",
                definition.line,
            )
        if isinstance(node, ast.FuncCall) and not is_builtin_function(node.func):
            _error(f"unknown function {node.func!r}", definition.line)


def _check_acyclic(program):
    """Reject (mutually) recursive component instantiation."""
    visiting, done = set(), set()

    def visit(name, chain):
        if name in done:
            return
        if name in visiting:
            cycle = " -> ".join(chain + (name,))
            _error(f"recursive component instantiation: {cycle}")
        visiting.add(name)
        component = program.components[name]
        for stmt in _all_statements(component.body):
            if isinstance(stmt, ast.ComponentCall):
                visit(stmt.component, chain + (name,))
        visiting.discard(name)
        done.add(name)

    for name in program.components:
        visit(name, ())


def _all_statements(body):
    for stmt in body:
        yield stmt
        if isinstance(stmt, ast.Unroll):
            yield from _all_statements(stmt.body)


def analyze(program, entry="main"):
    """Run semantic analysis; returns :class:`ProgramInfo` or raises.

    *entry* names the component that must exist as the program's top level
    (pass ``entry=None`` to skip that requirement, e.g. for libraries of
    reusable components).
    """
    if entry is not None and entry not in program.components:
        _error(f"program has no {entry!r} component")

    for definition in program.reductions.values():
        _check_reduction_def(definition)

    info = ProgramInfo(program=program)
    for name, component in program.components.items():
        if name in program.reductions:
            _error(f"{name!r} is defined as both a component and a reduction")
        checker = _ComponentChecker(component, program)
        info.components[name] = checker.run()

    _check_acyclic(program)
    return info
