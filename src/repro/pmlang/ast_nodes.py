"""Abstract syntax tree for PMLang.

The AST mirrors the constructs in §II of the paper: components with typed,
modifier-annotated arguments, index variable declarations, formula-style
assignments, group reductions, component instantiations with domain
annotations, and user-defined reductions. Every node records its source
line so later phases can report precise errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expression nodes."""

    line: int = field(default=0, compare=False)


@dataclass
class Literal(Expr):
    """An integer, float, or string constant."""

    value: object = None


@dataclass
class Name(Expr):
    """A bare identifier: variable, index variable, or dimension symbol."""

    id: str = ""


@dataclass
class Indexed(Expr):
    """Subscripted access ``base[e0][e1]...`` on a multi-dimensional value."""

    base: str = ""
    indices: Tuple[Expr, ...] = ()


@dataclass
class UnaryOp(Expr):
    """Unary ``-`` or ``!`` applied to an operand."""

    op: str = ""
    operand: Expr = None


@dataclass
class BinOp(Expr):
    """A binary arithmetic, comparison, or logical operation."""

    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? then : other``."""

    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class FuncCall(Expr):
    """Call to a built-in scalar function, e.g. ``sigmoid(x)``."""

    func: str = ""
    args: Tuple[Expr, ...] = ()


@dataclass
class ReductionIndex:
    """One ``[name]`` or ``[name: predicate]`` group in a reduction call."""

    name: str = ""
    predicate: Optional[Expr] = None


@dataclass
class ReductionCall(Expr):
    """Group reduction, e.g. ``sum[i][j: j != i](A[i][j])``.

    ``op`` is either a built-in reduction (sum/prod/max/min/argmax/argmin)
    or the name of a user-defined ``reduction``.
    """

    op: str = ""
    indices: Tuple[ReductionIndex, ...] = ()
    arg: Expr = None


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statement nodes."""

    line: int = field(default=0, compare=False)


@dataclass
class IndexSpec:
    """A single declaration ``name[low:high]`` (inclusive bounds)."""

    name: str = ""
    low: Expr = None
    high: Expr = None


@dataclass
class IndexDecl(Stmt):
    """``index i[0:n-1], j[0:m-1];``"""

    specs: Tuple[IndexSpec, ...] = ()


@dataclass
class VarDeclItem:
    """One declarator in a local variable declaration: name plus dims."""

    name: str = ""
    dims: Tuple[Expr, ...] = ()


@dataclass
class VarDecl(Stmt):
    """Local declaration such as ``float P_g[b], H_g[b];``"""

    dtype: str = ""
    items: Tuple[VarDeclItem, ...] = ()


@dataclass
class Assign(Stmt):
    """Formula assignment ``target[...indices] = expr;``"""

    target: str = ""
    target_indices: Tuple[Expr, ...] = ()
    value: Expr = None


@dataclass
class ComponentCall(Stmt):
    """Instantiation ``DOMAIN: name(arg0, arg1, ...);`` (domain optional)."""

    domain: Optional[str] = None
    component: str = ""
    args: Tuple[Expr, ...] = ()


@dataclass
class Unroll(Stmt):
    """Compile-time replication ``unroll s[lo:hi] { ... }``.

    The body is instantiated once per value of ``s`` in [lo, hi] with ``s``
    bound as an integer constant. This is a reproduction extension (see
    DESIGN.md) used to express staged algorithms such as the FFT butterfly.
    """

    var: str = ""
    low: Expr = None
    high: Expr = None
    body: Tuple[Stmt, ...] = ()


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class ArgDecl:
    """A component argument: modifier, element type, name, and dims."""

    modifier: str = ""
    dtype: str = ""
    name: str = ""
    dims: Tuple[Expr, ...] = ()
    line: int = 0


@dataclass
class Component:
    """A named, reusable execution block (§II-A)."""

    name: str = ""
    args: Tuple[ArgDecl, ...] = ()
    body: Tuple[Stmt, ...] = ()
    line: int = 0


@dataclass
class ReductionDef:
    """User-defined group reduction: ``reduction min(a,b) = a<b ? a : b;``"""

    name: str = ""
    params: Tuple[str, str] = ("a", "b")
    expr: Expr = None
    line: int = 0


@dataclass
class Program:
    """A parsed PMLang translation unit."""

    components: dict = field(default_factory=dict)
    reductions: dict = field(default_factory=dict)

    def component(self, name):
        """Return the component named *name* (KeyError if absent)."""
        return self.components[name]


def walk_expr(expr):
    """Yield *expr* and every sub-expression beneath it, depth-first."""
    if expr is None:
        return
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Ternary):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.other)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk_expr(arg)
    elif isinstance(expr, ReductionCall):
        for spec in expr.indices:
            if spec.predicate is not None:
                yield from walk_expr(spec.predicate)
        yield from walk_expr(expr.arg)
    elif isinstance(expr, Indexed):
        for index in expr.indices:
            yield from walk_expr(index)


def expr_names(expr):
    """Return the set of identifier names referenced anywhere in *expr*."""
    names = set()
    for node in walk_expr(expr):
        if isinstance(node, Name):
            names.add(node.id)
        elif isinstance(node, Indexed):
            names.add(node.base)
    return names
