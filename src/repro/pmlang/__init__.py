"""PMLang: the cross-domain language front end (§II of the paper)."""

from .ast_nodes import Program
from .lexer import tokenize
from .parser import parse
from .semantic import ProgramInfo, analyze

__all__ = ["Program", "ProgramInfo", "analyze", "parse", "tokenize"]
