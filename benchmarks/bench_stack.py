"""Benchmarks of the stack itself: compile and execute throughput.

Not a paper figure — these keep the reproduction honest about its own
performance (parser, builder, passes, lowering, interpreter) and guard
against regressions in the hot paths.
"""

import numpy as np
import pytest

from repro.driver import CompilerSession
from repro.passes import default_pipeline
from repro.pmlang.parser import parse
from repro.srdfg import Executor, build
from repro.targets import default_accelerators
from repro.workloads import get_workload

MPC_SOURCE = get_workload("MobileRobot").source()


def test_parse_mpc(benchmark):
    program = benchmark(parse, MPC_SOURCE)
    assert "main" in program.components


def test_build_mpc_srdfg(benchmark):
    graph = benchmark(build, MPC_SOURCE, "main", "RBT")
    assert graph.depth() == 2


def test_pipeline_mpc(benchmark):
    def run():
        return default_pipeline().run(build(MPC_SOURCE, domain="RBT")).graph

    graph = benchmark(run)
    assert graph.compute_nodes() or graph.component_nodes()


def test_full_compile_mpc(benchmark):
    # A fresh session per call so every iteration measures a *cold*
    # compile; a shared session would serve iterations 2+ from its
    # artifact cache.
    def compile_cold():
        return CompilerSession(default_accelerators()).compile(
            MPC_SOURCE, entry="main", domain="RBT"
        )

    app = benchmark(compile_cold)
    assert "RBT" in app.programs


def test_cached_recompile_mpc(benchmark):
    session = CompilerSession(default_accelerators())
    session.compile(MPC_SOURCE, entry="main", domain="RBT")

    app = benchmark(session.compile, MPC_SOURCE, "main", "RBT")
    assert "RBT" in app.programs
    # Every benchmarked call was an artifact-cache hit: the stack parsed
    # and built exactly once, during the warm-up compile above.
    assert session.stage_executions("parse") == 1
    assert session.stage_executions("srdfg-build") == 1


def test_interpreter_matvec_throughput(benchmark):
    source = (
        "main(input float A[256][256], input float x[256], output float y[256]) {"
        " index i[0:255], j[0:255]; y[j] = sum[i](A[j][i]*x[i]); }"
    )
    graph = build(source)
    rng = np.random.default_rng(0)
    a = rng.normal(size=(256, 256))
    x = rng.normal(size=256)
    executor = Executor(graph)

    result = benchmark(executor.run, {"A": a, "x": x})
    assert np.allclose(result.outputs["y"], a @ x)


def test_interpreter_fft8192(benchmark):
    workload = get_workload("FFT-8192")
    graph = workload.build_graph()
    executor = Executor(graph)
    params = workload.params()
    inputs = workload.inputs(0, None)

    result = benchmark(executor.run, inputs, params)
    spectrum = np.fft.fft(workload.signal)
    assert np.allclose(result.outputs["fr"], spectrum.real, atol=1e-6)


def test_build_resnet18(benchmark):
    workload = get_workload("ResNet-18")
    source = workload.source()

    graph = benchmark.pedantic(build, args=(source, "main", "DL"), rounds=2, iterations=1)
    assert len(graph.component_nodes()) > 40
