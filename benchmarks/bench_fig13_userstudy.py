"""Figure 13: user-study LOC and coding-time reduction (PMLang vs Python).

Paper headline: 2.5x fewer lines of code (Kmeans 3.3x, DCT 1.8x) and 1.9x
less implementation time on average. LOC ratios here are *measured* from
the repository's real PMLang and Python sources; time is modelled (see
repro.study.userstudy).
"""

import pytest

from repro.eval.figures import figure13


@pytest.fixture(scope="module")
def fig13():
    return figure13()


def test_fig13_regenerates(benchmark, emit):
    data = benchmark.pedantic(figure13, rounds=1, iterations=1)
    emit("figure13", data.render())
    assert {row[0] for row in data.rows} == {"Kmeans", "DCT"}


def test_fig13_loc_reduction_in_band(fig13):
    # Paper: 2.5x average (3.3x / 1.8x).
    assert 1.5 < fig13.summary["average_loc_x"] < 4.0


def test_fig13_time_reduction_in_band(fig13):
    # Paper: 1.9x average (2.6x / 1.2x).
    assert 1.0 < fig13.summary["average_time_x"] < 3.0


def test_fig13_time_trails_loc(fig13):
    # Subjects write fewer PMLang lines but spend more time per line in a
    # just-learned language — the paper's own ratios encode this.
    for _, loc_x, time_x in fig13.rows:
        assert time_x < loc_x
