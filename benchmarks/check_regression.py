#!/usr/bin/env python
"""Benchmark regression gate: fresh results vs committed baselines.

CI regenerates ``results/BENCH_serve.json`` (serve scaling table) and
``results/BENCH_figures.json`` (figure/fusion/rule-trip data), then runs
this script against the baselines committed under ``results/baselines/``.
A run fails when:

* a serve scaling row's throughput drops more than ``--tolerance``
  (default 15%) below the baseline, or its p99 latency rises more than
  the tolerance above it, or a baseline worker count disappears,
* a thread-vs-process pool row's speedup falls more than *twice* the
  tolerance below the baseline (a ratio of two wall-clock measurements
  carries roughly double the noise of either one), a pool row
  disappears, loses bit-identity bookkeeping (conservation or plan
  reuse), or crashes workers; or the saturation run stops completing
  every request or its throughput falls more than twice the tolerance,
* a numeric leaf of the figures file drifts more than the tolerance
  from the baseline (wall-clock leaves — ``compile_seconds``,
  ``wall_seconds`` — are skipped; everything else in that file is
  deterministic cost-model output), or a baseline leaf disappears,
* a profile in ``results/BENCH_profiles.json`` loses its generated
  kernel (build declined where the baseline built one), or its
  kernel-vs-interpreter steady-state speedup falls more than *twice*
  the tolerance below the baseline (a ratio of two wall-clock
  measurements carries roughly double the noise of either one).

Updating a baseline is deliberate: rerun the benchmark and commit the
new file to ``results/baselines/`` in the same PR that changed the
performance.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Leaf-path substrings excluded from the figures comparison: wall-clock
#: measurements vary run to run; the modeled numbers do not.
WALL_CLOCK_MARKERS = ("compile_seconds", "wall_seconds")


def load(path):
    with open(path) as handle:
        return json.load(handle)


def check_serve(current, baseline, tolerance):
    """Failures in the serve scaling table (throughput down / p99 up)."""
    failures = []
    current_rows = {row["workers"]: row for row in current.get("scaling", [])}
    for base in baseline.get("scaling", []):
        workers = base["workers"]
        row = current_rows.get(workers)
        if row is None:
            failures.append(
                f"serve: workers={workers} row missing from current results"
            )
            continue
        throughput, floor = row["throughput_rps"], base["throughput_rps"]
        if throughput < floor * (1 - tolerance):
            failures.append(
                f"serve: workers={workers} throughput {throughput:.2f} rps "
                f"is >{tolerance:.0%} below baseline {floor:.2f} rps"
            )
        p99 = row["latency"]["p99_seconds"]
        ceiling = base["latency"]["p99_seconds"]
        if p99 > ceiling * (1 + tolerance):
            failures.append(
                f"serve: workers={workers} p99 {p99 * 1e3:.1f} ms is "
                f">{tolerance:.0%} above baseline {ceiling * 1e3:.1f} ms"
            )
    failures += check_pool_scaling(current, baseline, tolerance)
    failures += check_saturation(current, baseline, tolerance)
    return failures


def check_pool_scaling(current, baseline, tolerance):
    """Failures in the thread-vs-process pool rows.

    Speedup is a ratio of two independently noisy wall-clock
    measurements, so its floor uses ``2 * tolerance`` (the same
    allowance the profile speedup gate uses). Conservation, plan reuse,
    and a crash-free run are boolean invariants — any flip fails.
    """
    failures = []
    current_rows = {
        (row["mode"], row["workers"]): row
        for row in current.get("pool_scaling", {}).get("rows", [])
    }
    for base in baseline.get("pool_scaling", {}).get("rows", []):
        key = (base["mode"], base["workers"])
        row = current_rows.get(key)
        label = f"pool={base['mode']} workers={base['workers']}"
        if row is None:
            failures.append(
                f"serve: {label} row missing from current results"
            )
            continue
        floor = base["speedup"] * (1 - 2 * tolerance)
        if row["speedup"] < floor:
            failures.append(
                f"serve: {label} speedup {row['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x, "
                f"2x tolerance {2 * tolerance:.0%})"
            )
        for invariant in ("conservation_ok", "plan_reuse_ok"):
            if base.get(invariant) and not row.get(invariant):
                failures.append(f"serve: {label} lost {invariant}")
        if row.get("worker_crashes", 0) > base.get("worker_crashes", 0):
            failures.append(
                f"serve: {label} had {row['worker_crashes']} worker "
                f"crash(es) (baseline {base.get('worker_crashes', 0)})"
            )
    return failures


def check_saturation(current, baseline, tolerance):
    """Failures in the sustained-saturation summary."""
    base = baseline.get("saturation")
    if not base:
        return []
    entry = current.get("saturation")
    if not entry:
        return ["serve: saturation section missing from current results"]
    failures = []
    if entry.get("completed", 0) < base.get("requests", 0):
        failures.append(
            f"serve: saturation completed only {entry.get('completed', 0)} "
            f"of {base.get('requests', 0)} request(s)"
        )
    if base.get("conservation_ok") and not entry.get("conservation_ok"):
        failures.append("serve: saturation lost conservation_ok")
    if entry.get("distinct_signatures", 0) > base.get(
        "distinct_signatures", 1
    ):
        failures.append(
            f"serve: saturation produced "
            f"{entry['distinct_signatures']} distinct signature(s) "
            f"(baseline {base.get('distinct_signatures', 1)})"
        )
    throughput = entry.get("throughput_rps", 0.0)
    floor = base.get("throughput_rps", 0.0) * (1 - 2 * tolerance)
    if throughput < floor:
        failures.append(
            f"serve: saturation throughput {throughput:.1f} rps fell "
            f"below {floor:.1f} rps (baseline "
            f"{base.get('throughput_rps', 0.0):.1f} rps, "
            f"2x tolerance {2 * tolerance:.0%})"
        )
    return failures


def numeric_leaves(value, path=""):
    """Yield ``(path, number)`` for every numeric leaf of a JSON tree."""
    if isinstance(value, dict):
        for key in sorted(value):
            yield from numeric_leaves(value[key], f"{path}/{key}")
    elif isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            yield from numeric_leaves(item, f"{path}[{index}]")
    elif isinstance(value, bool):
        return
    elif isinstance(value, (int, float)):
        yield path, float(value)


def check_figures(current, baseline, tolerance, epsilon=1e-9):
    """Failures among the deterministic numeric leaves of the figures file."""
    failures = []
    current_leaves = dict(numeric_leaves(current))
    for path, expected in numeric_leaves(baseline):
        if any(marker in path for marker in WALL_CLOCK_MARKERS):
            continue
        got = current_leaves.get(path)
        if got is None:
            failures.append(f"figures: {path} missing from current results")
            continue
        scale = max(abs(expected), abs(got))
        if scale <= epsilon:
            continue
        drift = abs(got - expected) / scale
        if drift > tolerance:
            failures.append(
                f"figures: {path} drifted {drift:.1%} "
                f"(baseline {expected:g}, got {got:g})"
            )
    return failures


def check_profiles(current, baseline, tolerance):
    """Failures in the execute-tier profile table.

    Gates the codegen tier's two load-bearing properties: every profile
    that built a kernel at baseline time still builds one, and the
    steady-state speedup over the interpreter has not collapsed. The
    speedup floor uses ``2 * tolerance`` because it is a ratio of two
    independently noisy wall-clock measurements.
    """
    failures = []
    current_profiles = current.get("profiles", {})
    for name, base in sorted(baseline.get("profiles", {}).items()):
        entry = current_profiles.get(name)
        if entry is None:
            failures.append(
                f"profiles: {name} missing from current results"
            )
            continue
        if base.get("kernel_built") and not entry.get("kernel_built"):
            failures.append(
                f"profiles: {name} kernel build declined "
                f"(baseline built one)"
            )
            continue
        expected = base.get("steady_speedup")
        got = entry.get("steady_speedup")
        if expected is None:
            continue
        if got is None:
            failures.append(
                f"profiles: {name} steady_speedup missing from "
                f"current results"
            )
            continue
        floor = expected * (1 - 2 * tolerance)
        if got < floor:
            failures.append(
                f"profiles: {name} steady speedup {got:.2f}x fell below "
                f"{floor:.2f}x (baseline {expected:.2f}x, "
                f"2x tolerance {2 * tolerance:.0%})"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--serve", metavar="PATH", help="fresh BENCH_serve.json"
    )
    parser.add_argument(
        "--figures", metavar="PATH", help="fresh BENCH_figures.json"
    )
    parser.add_argument(
        "--profiles", metavar="PATH", help="fresh BENCH_profiles.json"
    )
    parser.add_argument(
        "--baseline-dir",
        default="results/baselines",
        metavar="DIR",
        help="directory holding the committed baseline copies "
        "(default results/baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        metavar="FRACTION",
        help="allowed relative regression (default 0.15)",
    )
    args = parser.parse_args(argv)
    if not args.serve and not args.figures and not args.profiles:
        parser.error(
            "nothing to check: pass --serve, --figures, and/or --profiles"
        )

    baselines = Path(args.baseline_dir)
    failures, checked = [], 0
    if args.serve:
        failures += check_serve(
            load(args.serve),
            load(baselines / "BENCH_serve.json"),
            args.tolerance,
        )
        checked += 1
    if args.figures:
        failures += check_figures(
            load(args.figures),
            load(baselines / "BENCH_figures.json"),
            args.tolerance,
        )
        checked += 1
    if args.profiles:
        failures += check_profiles(
            load(args.profiles),
            load(baselines / "BENCH_profiles.json"),
            args.tolerance,
        )
        checked += 1

    for failure in failures:
        print(f"REGRESSION {failure}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} regression(s) beyond {args.tolerance:.0%} "
            f"of baseline (see above); if intentional, refresh "
            f"{baselines}/ in this PR",
            file=sys.stderr,
        )
        return 1
    print(
        f"regression gate ok: {checked} file(s) within "
        f"{args.tolerance:.0%} of {baselines}/"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
