"""Tables I-VI: regenerate every table of the paper."""

from repro.eval.tables import table1, table2, table3, table4, table5, table6
from repro.workloads import END_TO_END, SINGLE_DOMAIN


def test_table1_keywords(benchmark, emit):
    data = benchmark.pedantic(table1, rounds=1, iterations=1)
    emit("table1", data.render())
    keywords = {row[1] for row in data.rows}
    assert "input" in keywords and "index" in keywords


def test_table2_stack_comparison(benchmark, emit):
    data = benchmark.pedantic(table2, rounds=1, iterations=1)
    emit("table2", data.render())
    # PolyMath covers exactly the five paper domains; GPPs cover all seven.
    header = data.columns
    polymath = header.index("PolyMath")
    gpp = header.index("General-Purpose Processors")
    assert sum(row[polymath] == "yes" for row in data.rows) == 5
    assert sum(row[gpp] == "yes" for row in data.rows) == 7


def test_table3_benchmarks(benchmark, emit):
    data = benchmark.pedantic(table3, rounds=1, iterations=1)
    emit("table3", data.render())
    assert len(data.rows) == len(SINGLE_DOMAIN) == 15
    loc_column = [row[4] for row in data.rows]
    # PMLang programs stay compact: every workload under ~200 LOC, and the
    # formula-style kernels (graph/DSP) under ~25.
    assert all(loc < 200 for loc in loc_column)
    by_name = {row[1]: row[4] for row in data.rows}
    assert by_name["Twitter-BFS"] < 25
    assert by_name["FFT-8192"] < 25


def test_table4_end_to_end(benchmark, emit):
    data = benchmark.pedantic(table4, rounds=1, iterations=1)
    emit("table4", data.render())
    assert len(data.rows) == len(END_TO_END) == 2
    brain = next(row for row in data.rows if row[0] == "BrainStimul")
    assert set(brain[2].split("+")) == {"DSP", "DA", "RBT"}


def test_table5_accelerator_map(benchmark, emit):
    data = benchmark.pedantic(table5, rounds=1, iterations=1)
    emit("table5", data.render())
    mapping = {row[0]: row[1] for row in data.rows}
    assert "ROBOX" in mapping["RBT"]
    assert "GRAPHICIONADO" in mapping["GA"]
    assert "TABLA" in mapping["DA"]
    assert "DECO" in mapping["DSP"]
    assert "VTA" in mapping["DL"]


def test_table6_hardware_specs(benchmark, emit):
    data = benchmark.pedantic(table6, rounds=1, iterations=1)
    emit("table6", data.render())
    by_name = {row[0]: row for row in data.rows}
    assert by_name["Xeon E-2176G"][2] == 80.0
    assert by_name["Titan Xp"][2] == 250.0
    assert by_name["ROBOX (ASIC)"][1] == 1.0  # GHz
