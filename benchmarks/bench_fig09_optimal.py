"""Figure 9: percent of hand-optimised (native-stack) performance.

Paper headline: 83.9% average; deep learning ~100% (direct srDFG -> VTA
node conversion); robotics and DECO-bound DSP fall below average.
"""

import pytest

from repro.eval.figures import figure9


@pytest.fixture(scope="module")
def fig9(harness):
    return figure9(harness)


def test_fig9_regenerates(benchmark, harness, emit):
    data = benchmark.pedantic(lambda: figure9(harness), rounds=1, iterations=1)
    emit("figure09", data.render())
    assert len(data.rows) == 15


def test_fig9_average_in_band(fig9):
    # Paper: 83.9%. Accept 70-100.
    assert 70.0 < fig9.summary["average_percent"] <= 100.0


def test_fig9_each_benchmark_bounded(fig9):
    for name, _, percent in fig9.rows:
        assert 40.0 < percent <= 100.0, (name, percent)


def test_fig9_dl_is_near_optimal(fig9):
    # "PolyMath does not contribute any overhead specifically for deep
    # learning acceleration" (§V-B1).
    by_name = {row[0]: row[2] for row in fig9.rows}
    assert by_name["ResNet-18"] > 90.0
    assert by_name["MobileNet"] > 85.0


def test_fig9_robotics_below_dl(fig9):
    # Robotics' unique data semantics are not captured by the four type
    # modifiers, so translated MPC trails hand-tuned ROBOX code (§V-B1).
    by_name = {row[0]: row[2] for row in fig9.rows}
    assert by_name["MobileRobot"] < by_name["ResNet-18"]
