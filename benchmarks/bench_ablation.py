"""Ablation studies for the design choices DESIGN.md calls out.

Not paper figures — these quantify the mechanisms the stack's results rest
on, so a change that silently disables one fails here:

* **algebraic combination** (§IV-B): fusing matvec chains reduces kernel
  count and dispatch cost on ROBOX;
* **type-modifier residency** (§II-A): keeping ``param``/``state`` on chip
  vs streaming everything each invocation;
* **einsum fast path**: the interpreter's contraction dispatch vs the
  general lattice evaluator;
* **analytic vs event-level GRAPHICIONADO**: how much load imbalance the
  per-stream simulation reveals on a power-law graph;
* **analytic vs cycle-level TABLA**: the roofline estimate against a real
  PE-array schedule.
"""

import dataclasses

import numpy as np
import pytest

from repro.driver import CompilerSession
from repro.hw.cost import RooflineModel
from repro.passes import AlgebraicCombination, DeadCodeElimination, PassManager, lower
from repro.srdfg import Executor, build, expand_scalar
from repro.targets import Robox, compile_to_targets, default_accelerators
from repro.targets.graphicionado_sim import simulate_sweep
from repro.targets.tabla_schedule import TablaScheduler
from repro.workloads import get_workload
from repro.workloads.datasets import rmat_graph

ALL_SCALAR = {"alu", "mul", "div", "nonlinear"}


class TestAlgebraicCombinationAblation:
    @pytest.fixture(scope="class")
    def programs(self):
        source = get_workload("MobileRobot").source()

        def compile_variant(fuse):
            graph = build(source, domain="RBT")
            lower(graph, {"RBT": Robox.spec.supported_ops}, {"RBT": ALL_SCALAR})
            if fuse:
                PassManager([AlgebraicCombination(), DeadCodeElimination()]).run(graph)
            accelerator = Robox()
            return accelerator, compile_to_targets(graph, {"RBT": accelerator})["RBT"]

        return compile_variant(False), compile_variant(True)

    def test_fusion_reduces_fragment_count(self, programs):
        (_, unfused), (_, fused) = programs
        assert len(fused) < len(unfused)

    def test_fusion_reduces_runtime(self, programs, emit):
        (acc_plain, unfused), (acc_fused, fused) = programs
        plain = acc_plain.estimate(unfused)
        combined = acc_fused.estimate(fused)
        emit(
            "ablation_fusion",
            "Ablation: algebraic combination on ROBOX MobileRobot MPC\n"
            f"unfused: {len(unfused)} fragments, {plain.seconds * 1e6:.3f} us\n"
            f"fused:   {len(fused)} fragments, {combined.seconds * 1e6:.3f} us\n"
            f"speedup: {plain.seconds / combined.seconds:.2f}x",
        )
        assert combined.seconds < plain.seconds


class TestResidencyAblation:
    def test_streaming_params_is_slower(self, emit):
        workload = get_workload("MobileRobot")
        session = CompilerSession(default_accelerators())
        app = session.compile(workload.source(), domain="RBT")
        resident = app.accelerators["RBT"]
        streaming = Robox()
        # Ablate the scratchpad: one byte of capacity spills every param.
        streaming.params = dataclasses.replace(
            streaming.params, onchip_capacity_bytes=1
        )
        streaming.model = RooflineModel(streaming.params)
        base = resident.estimate(app.programs["RBT"])
        ablated = streaming.estimate(app.programs["RBT"])
        emit(
            "ablation_residency",
            "Ablation: param/state scratchpad residency (ROBOX MPC)\n"
            f"resident:  {base.seconds * 1e6:.3f} us per step\n"
            f"streaming: {ablated.seconds * 1e6:.3f} us per step\n"
            f"type modifiers buy {ablated.seconds / base.seconds:.2f}x",
        )
        assert ablated.seconds > base.seconds * 1.5


class TestEinsumAblation:
    SIZE = 128

    def _matvec_source(self, defeat_fast_path):
        subscript = "i+0" if defeat_fast_path else "i"
        return (
            f"main(input float A[{self.SIZE}][{self.SIZE}],"
            f" input float x[{self.SIZE}], output float y[{self.SIZE}]) {{"
            f" index i[0:{self.SIZE - 1}], j[0:{self.SIZE - 1}];"
            f" y[j] = sum[i](A[j][{subscript}]*x[{subscript}]); }}"
        )

    def test_fast_and_general_paths_agree(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(self.SIZE, self.SIZE))
        x = rng.normal(size=self.SIZE)
        fast = Executor(build(self._matvec_source(False))).run(
            inputs={"A": a, "x": x}
        )
        general = Executor(build(self._matvec_source(True))).run(
            inputs={"A": a, "x": x}
        )
        assert np.allclose(fast.outputs["y"], general.outputs["y"])
        assert np.allclose(fast.outputs["y"], a @ x)

    def test_einsum_path_benchmark(self, benchmark):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(self.SIZE, self.SIZE))
        x = rng.normal(size=self.SIZE)
        executor = Executor(build(self._matvec_source(False)))
        benchmark(executor.run, {"A": a, "x": x})

    def test_general_path_benchmark(self, benchmark):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(self.SIZE, self.SIZE))
        x = rng.normal(size=self.SIZE)
        executor = Executor(build(self._matvec_source(True)))
        benchmark(executor.run, {"A": a, "x": x})


class TestGraphicionadoModelFidelity:
    def test_event_level_exposes_imbalance(self, emit):
        data = rmat_graph(1024, 16, seed=3)
        result = simulate_sweep(data.adjacency, streams=8)
        emit(
            "ablation_graphicionado",
            "Ablation: analytic vs event-level GRAPHICIONADO sweep\n"
            f"edges: {result.total_edges}\n"
            f"analytic cycles: {result.analytic_cycles:.0f}\n"
            f"event-level makespan: {result.makespan_cycles}\n"
            f"load imbalance (max/mean stream): {result.imbalance:.2f}x",
        )
        # Power-law imbalance: the analytic model is optimistic, but by a
        # bounded factor on hash-partitioned streams.
        assert result.analytic_cycles <= result.makespan_cycles
        assert result.makespan_cycles < result.analytic_cycles * 4


class TestTablaModelFidelity:
    def test_schedule_vs_analytic_estimate(self, emit):
        source = (
            "main(input float A[16][16], input float x[16], output float y[16]) {"
            " index i[0:15], j[0:15]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        graph = build(source, domain="DA")
        [node] = graph.compute_nodes()
        scheduler = TablaScheduler(num_pes=64, nonlinear_pes=8)
        schedule = scheduler.schedule_statement(node)

        from repro.targets import Tabla

        accelerator = Tabla()
        session = CompilerSession({"DA": accelerator}, run_pipeline=False)
        app = session.compile(source, domain="DA")
        fragment = next(
            f for f in app.programs["DA"].fragments if f.attrs.get("op_counts")
        )
        analytic_cycles = (
            accelerator.fragment_cost(fragment).seconds
            * accelerator.params.frequency_hz
        )
        emit(
            "ablation_tabla",
            "Ablation: analytic vs cycle-level TABLA (16x16 matvec)\n"
            f"list-scheduled makespan: {schedule.makespan} cycles "
            f"(utilisation {schedule.utilisation:.2f})\n"
            f"analytic estimate: {analytic_cycles:.1f} cycles",
        )
        # The two models agree within a small factor.
        assert analytic_cycles / 8 < schedule.makespan < analytic_cycles * 8
