"""Figure 7: runtime and energy improvement of PolyMath over the Xeon CPU.

Paper headline: geomean ~3.3-3.8x runtime, ~18-24x energy; deep learning
*loses* runtime (~0.2x, VTA is a low-power part) but wins energy; the
Hexacopter beats the MobileRobot; FFT leads the DSP group.
"""

import pytest

from repro.eval.figures import figure7


@pytest.fixture(scope="module")
def fig7(harness, benchmark_holder=None):
    return figure7(harness)


def test_fig7_regenerates(benchmark, harness, emit):
    data = benchmark.pedantic(lambda: figure7(harness), rounds=1, iterations=1)
    emit("figure07", data.render())
    assert len(data.rows) == 15


def test_fig7_geomeans_in_paper_band(fig7):
    # Paper: 3.3-3.8x runtime, 18.1-23.8x energy. Accept a 2x band.
    assert 1.5 < fig7.summary["geomean_runtime_x"] < 7.0
    assert 9.0 < fig7.summary["geomean_energy_x"] < 50.0


def test_fig7_every_non_dl_benchmark_beats_cpu(fig7):
    for name, domain, runtime_x, energy_x in fig7.rows:
        if domain == "DL":
            continue
        assert runtime_x > 1.0, (name, runtime_x)


def test_fig7_dl_loses_runtime_wins_energy(fig7):
    dl_rows = [row for row in fig7.rows if row[1] == "DL"]
    assert len(dl_rows) == 2
    for name, _, runtime_x, energy_x in dl_rows:
        assert runtime_x < 1.0, name  # paper: ~0.2x
        assert energy_x > 1.0, name  # paper: 8-10x


def test_fig7_energy_always_exceeds_runtime_gain(fig7):
    for name, _, runtime_x, energy_x in fig7.rows:
        assert energy_x > runtime_x, name


def test_fig7_hexacopter_beats_mobilerobot(fig7):
    by_name = {row[0]: row[2] for row in fig7.rows}
    assert by_name["Hexacopter"] > by_name["MobileRobot"]


def test_fig7_fft_leads_dsp_group(fig7):
    by_name = {row[0]: row[2] for row in fig7.rows}
    assert by_name["FFT-8192"] > by_name["DCT-1024"]
