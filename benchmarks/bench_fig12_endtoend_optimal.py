"""Figure 12: end-to-end percent of hand-tuned optimal performance.

Paper headline: 76.7% (BrainStimul) and 76.9% (OptionPricing); the ~23%
automation overhead is "a fair bargain" for single-program cross-domain
programming.
"""

import pytest

from repro.eval.figures import figure12


@pytest.fixture(scope="module")
def fig12(harness):
    return figure12(harness)


def test_fig12_regenerates(benchmark, harness, emit):
    data = benchmark.pedantic(lambda: figure12(harness), rounds=1, iterations=1)
    emit("figure12", data.render())
    assert len(data.rows) == 2


def test_fig12_average_in_band(fig12):
    # Paper: ~77%. Accept 65-100.
    assert 65.0 < fig12.summary["average_percent"] <= 100.0


def test_fig12_each_app_bounded(fig12):
    for name, _, percent in fig12.rows:
        assert 60.0 < percent <= 100.0, (name, percent)
