"""Figure 10: end-to-end runtime/energy over CPU per acceleration combo.

Paper headline: accelerating *all* kernels beats the best single-domain
acceleration by 1.85x (BrainStimul) / 2.06x (OptionPricing); every added
kernel reduces Amdahl's burden.
"""

import pytest

from repro.eval.figures import figure10


@pytest.fixture(scope="module")
def fig10(harness):
    return figure10(harness)


def test_fig10_regenerates(benchmark, harness, emit):
    fig10a, fig10b = benchmark.pedantic(
        lambda: figure10(harness), rounds=1, iterations=1
    )
    emit("figure10a", fig10a.render())
    emit("figure10b", fig10b.render())
    assert len(fig10a.rows) == 7  # all subsets of {FFT, LR, MPC}
    assert len(fig10b.rows) == 3


def test_fig10a_full_acceleration_is_best(fig10):
    fig10a, _ = fig10
    full = next(row for row in fig10a.rows if row[0] == "FFT+LR+MPC")
    for combo, runtime_x, _ in fig10a.rows:
        assert full[1] >= runtime_x * 0.99, combo


def test_fig10a_amdahl_gap(fig10):
    # Paper: 1.85x between full and the best single-domain acceleration.
    fig10a, _ = fig10
    assert 1.3 < fig10a.summary["full_vs_best_single_x"] < 3.0


def test_fig10a_monotone_in_added_kernels(fig10):
    fig10a, _ = fig10
    by_combo = {row[0]: row[1] for row in fig10a.rows}
    assert by_combo["FFT+MPC"] >= by_combo["FFT"] * 0.99
    assert by_combo["FFT+LR+MPC"] >= by_combo["FFT+MPC"] * 0.99


def test_fig10b_blks_dominates(fig10):
    _, fig10b = fig10
    by_combo = {row[0]: row[1] for row in fig10b.rows}
    assert by_combo["BLKS"] > 1.0  # HyperStreams wins
    assert by_combo["LR+BLKS"] > 1.0


def test_fig10_communication_fractions(fig10):
    # Paper: 23.4% / 17.0% runtime overhead from data movement.
    fig10a, fig10b = fig10
    assert 0.0 < fig10a.summary["comm_runtime_frac"] < 0.5
    assert 0.0 < fig10b.summary["comm_runtime_frac"] < 0.5
