"""Figure 8: runtime and performance-per-watt vs Titan Xp and Jetson.

Paper headline: ~7.2x PPW over Titan Xp and ~1.7x over Jetson; Titan wins
raw runtime on DCT and deep learning (accelerator ratio << 1); small
batch-1 kernels (robotics) cannot utilise the discrete GPU.
"""

import pytest

from repro.eval.figures import figure8


@pytest.fixture(scope="module")
def fig8(harness):
    return figure8(harness)


def test_fig8_regenerates(benchmark, harness, emit):
    data = benchmark.pedantic(lambda: figure8(harness), rounds=1, iterations=1)
    emit("figure08", data.render())
    assert len(data.rows) == 15


def test_fig8_ppw_geomeans_in_band(fig8):
    # Paper: 7.2x (Titan), 1.7x (Jetson). Accept a 2x band.
    assert 3.0 < fig8.summary["geomean_ppw_x_titan"] < 25.0
    assert 0.8 < fig8.summary["geomean_ppw_x_jetson"] < 8.0


def test_fig8_jetson_runtime_near_parity(fig8):
    # Paper: ~1.2x geomean over Jetson.
    assert 0.5 < fig8.summary["geomean_runtime_x_jetson"] < 3.0


def test_fig8_titan_wins_raw_runtime_on_dct_and_dl(fig8):
    by_name = {row[0]: row for row in fig8.rows}
    for name in ("DCT-1024", "DCT-2048", "ResNet-18"):
        assert by_name[name][1] < 0.5, name  # paper: ~0.0-0.1x


def test_fig8_robotics_cannot_utilise_titan(fig8):
    by_name = {row[0]: row for row in fig8.rows}
    assert by_name["MobileRobot"][1] > 1.0
    assert by_name["Hexacopter"][1] > 1.0


def test_fig8_accelerators_win_ppw_except_dl(fig8):
    for row in fig8.rows:
        name, _, ppw_titan = row[0], row[1], row[2]
        if name in ("ResNet-18", "MobileNet"):
            continue
        assert ppw_titan > 1.0, name
