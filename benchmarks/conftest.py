"""Shared fixtures for the benchmark suite.

Each ``bench_*`` module regenerates one table or figure of the paper,
asserts its qualitative shape (the claims catalogued in EXPERIMENTS.md),
benchmarks its computation, and writes the rendered rows to
``results/<id>.txt`` so a full run leaves the complete reproduced
evaluation on disk.
"""

import pathlib

import pytest

from repro.eval import Harness

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def harness():
    """One shared harness: workload compilations are cached across figures."""
    return Harness()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Write a rendered table/figure to results/ and echo it."""

    def _emit(identifier, rendered):
        path = results_dir / f"{identifier}.txt"
        path.write_text(rendered + "\n")
        print(f"\n{rendered}\n[written to {path}]")
        return path

    return _emit
