"""Full-evaluation report: every table and figure in one artifact.

Writes ``results/full_report.txt`` — the complete reproduced evaluation a
reader can diff against the paper (EXPERIMENTS.md interprets it) — and
``results/BENCH_figures.json``, the machine-readable twin CI uploads as
an artifact: per-workload modelled runtimes and speedups, per-rule
rewrite trip counts (through the unified
:class:`~repro.obs.MetricsRegistry`), the rule-pipeline search, and the
DMA-transfer deltas cost-guided fusion achieves.
"""

import json

from repro.eval.figures import all_figures
from repro.eval.tables import all_tables


def test_full_report(benchmark, harness, emit):
    def build_report():
        sections = [table.render() for table in all_tables().values()]
        sections += [figure.render() for figure in all_figures(harness).values()]
        return "\n\n".join(sections)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    emit("full_report", report)
    # Every table and figure is present.
    for marker in ("Table I", "Table VI", "Figure 7", "Figure 13"):
        assert marker in report


def test_fig7_bar_chart(harness, emit):
    from repro.eval.figures import figure7

    data = figure7(harness)
    chart = data.render_bars(column=2)  # runtime_x
    emit("figure07_bars", chart)
    assert chart.count("#") > 15


#: Figure workloads whose fusion reports land in BENCH_figures.json.
#: OptionPricing and BrainStimul are the multi-domain ones where fusion
#: has crossings to erase; MobileRobot anchors the single-domain case
#: (zero transfers before and after).
_FUSION_WORKLOADS = ("MobileRobot", "OptionPricing", "BrainStimul")


def test_figures_json(harness, results_dir):
    """Emit ``results/BENCH_figures.json`` and assert its key claims."""
    from repro.driver import CompilerSession
    from repro.eval import Harness
    from repro.eval.dse import explore_rules
    from repro.obs import MetricsRegistry
    from repro.rewrite import REWRITE_STATS
    from repro.workloads import END_TO_END, SINGLE_DOMAIN

    registry = MetricsRegistry()
    registry.register("rewrite", REWRITE_STATS.to_dict, REWRITE_STATS.reset)

    figures = {
        identifier: {
            "figure": data.figure,
            "caption": data.caption,
            "columns": list(data.columns),
            "rows": [list(row) for row in data.rows],
            "summary": dict(data.summary),
        }
        for identifier, data in all_figures(harness).items()
    }

    workloads = {}
    for run in harness.run_all(tuple(SINGLE_DOMAIN) + tuple(END_TO_END)):
        workloads[run.name] = {
            "domain": run.domain,
            "accel_seconds": run.accel.seconds,
            "cpu_seconds": run.cpu.seconds,
            "runtime_x": run.runtime_vs_cpu,
            "energy_x": run.energy_vs_cpu,
        }

    fused = Harness(session=CompilerSession(fusion=True))
    fusion = {}
    for name in _FUSION_WORKLOADS:
        _, app, _ = fused.compiled(name)
        fusion[name] = app.fusion_report.to_dict()

    payload = {
        "workloads": workloads,
        "figures": figures,
        "rule_trips": registry.snapshot(),
        "rule_search": {
            "MobileRobot": [
                point.to_dict() for point in explore_rules("MobileRobot")
            ],
        },
        "fusion": fusion,
    }
    path = results_dir / "BENCH_figures.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[written to {path}]")

    # Every figure made it across, with rows.
    assert len(figures) >= 9
    assert all(entry["rows"] for entry in figures.values())
    # The compiles above ran through the rule engine, so trip counts
    # are live (namespaced under the registry's ``rewrite`` source).
    assert any(
        key.startswith("rewrite.") and value
        for key, value in payload["rule_trips"].items()
    )
    # The acceptance claim: fusion measurably reduces modelled DMA
    # transfers on at least two figure workloads.
    reduced = [
        name for name, report in fusion.items()
        if report["dma_transfers_before"] > report["dma_transfers_after"]
    ]
    assert len(reduced) >= 2, f"fusion reduced transfers only on {reduced}"
