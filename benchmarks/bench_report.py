"""Full-evaluation report: every table and figure in one artifact.

Writes ``results/full_report.txt`` — the complete reproduced evaluation a
reader can diff against the paper (EXPERIMENTS.md interprets it).
"""

from repro.eval.figures import all_figures
from repro.eval.tables import all_tables


def test_full_report(benchmark, harness, emit):
    def build_report():
        sections = [table.render() for table in all_tables().values()]
        sections += [figure.render() for figure in all_figures(harness).values()]
        return "\n\n".join(sections)

    report = benchmark.pedantic(build_report, rounds=1, iterations=1)
    emit("full_report", report)
    # Every table and figure is present.
    for marker in ("Table I", "Table VI", "Figure 7", "Figure 13"):
        assert marker in report


def test_fig7_bar_chart(harness, emit):
    from repro.eval.figures import figure7

    data = figure7(harness)
    chart = data.render_bars(column=2)  # runtime_x
    emit("figure07_bars", chart)
    assert chart.count("#") > 15
