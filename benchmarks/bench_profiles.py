"""Per-workload fragment profiles: where each accelerator spends time.

Not a paper figure — a supporting artifact (results/profile_*.txt) that
explains the Figure 7 numbers: which fragments dominate each benchmark on
its accelerator.
"""

import pytest

PROFILED = ["MobileRobot", "Twitter-BFS", "MovieL-100K", "FFT-8192", "ResNet-18"]


@pytest.mark.parametrize("name", PROFILED)
def test_profile_artifact(name, harness, emit):
    workload, app, _ = harness.compiled(name)
    report = app.profile_report(top=8)
    emit(f"profile_{name}", f"Fragment profile: {name}\n{report}")
    assert "total accelerator time" in report


def test_profiles_explain_runtime(benchmark, harness):
    def total_profile_time():
        total = 0.0
        for name in PROFILED:
            _, app, _ = harness.compiled(name)
            _, t = app.profile(top=1000)
            total += t
        return total

    total = benchmark.pedantic(total_profile_time, rounds=1, iterations=1)
    assert total > 0
