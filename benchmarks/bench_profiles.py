"""Per-workload fragment profiles: where each accelerator spends time.

Not a paper figure — a supporting artifact (results/profile_*.txt) that
explains the Figure 7 numbers: which fragments dominate each benchmark on
its accelerator.

``test_profile_execute_tiers`` additionally measures host execution of
each profiled workload through both execution tiers — the interpreted
ExecutionPlan and the generated kernel (:mod:`repro.codegen`) — and
writes the machine-readable comparison to ``results/BENCH_profiles.json``
(first vs steady-state seconds per tier, cross-checked against the
plan's own counters). ``benchmarks/check_regression.py --profiles``
gates that file against ``results/baselines/BENCH_profiles.json``.
"""

import json
import time

import numpy as np
import pytest

PROFILED = ["MobileRobot", "Twitter-BFS", "MovieL-100K", "FFT-8192", "ResNet-18"]

#: Executions per tier: one cold call plus steady-state repetitions.
TIER_STEPS = 7


@pytest.mark.parametrize("name", PROFILED)
def test_profile_artifact(name, harness, emit):
    workload, app, _ = harness.compiled(name)
    report = app.profile_report(top=8)
    emit(f"profile_{name}", f"Fragment profile: {name}\n{report}")
    assert "total accelerator time" in report


def _measure_tier(plan, workload, runner, steps=TIER_STEPS):
    """First/steady wall seconds for *runner*, plus the plan-counter
    delta over the same calls (the counters are the cross-check: both
    tiers bump ``plan.counters`` through their own execute paths)."""
    params = workload.params()
    state = {
        key: np.asarray(value)
        for key, value in workload.initial_state().items()
    }
    previous = None
    base_execs = plan.counters.executions
    base_seconds = plan.counters.seconds
    wall = []
    for step in range(steps):
        inputs = workload.inputs(step, previous)
        start = time.perf_counter()
        result = runner(inputs, params, state)
        wall.append(time.perf_counter() - start)
        state, previous = result.state, result
    steady = wall[2:] or wall
    return {
        "first_seconds": wall[0],
        "steady_seconds": sum(steady) / len(steady),
        "executions": plan.counters.executions - base_execs,
        "counter_seconds": plan.counters.seconds - base_seconds,
    }


def test_profile_execute_tiers(harness, results_dir):
    """Interpreter vs generated-kernel execute, first vs steady state.

    Runs each profiled workload's plan through the interpreted tier,
    then lowers it with :func:`repro.codegen.build_kernel` and replays
    the same trajectory through the kernel tier, asserting bit-identical
    f64 outputs before timing. The kernel is never attached to the
    shared plan, so the other benchmarks keep measuring the interpreter.
    """
    from repro.codegen import build_kernel

    profiles = {}
    for name in PROFILED:
        workload, app, _ = harness.compiled(name)
        plan = harness.session.plan_for(app)
        kernel = build_kernel(plan, plan_key=f"bench:{name}")
        entry = {"kernel_built": kernel is not None}
        if kernel is not None:
            # Bit-identity gate before any timing: one stateful step
            # through each tier must agree exactly at f64.
            params = workload.params()
            state = {
                key: np.asarray(value)
                for key, value in workload.initial_state().items()
            }
            ref = plan.execute(workload.inputs(0, None), params, state)
            got = kernel.try_execute(
                plan, workload.inputs(0, None), params, state
            )
            assert got is not None, f"{name}: kernel declined at run time"
            for key, value in ref.outputs.items():
                assert np.array_equal(
                    value, got.outputs[key], equal_nan=True
                ), f"{name}: kernel output {key} not bit-identical"
            entry["report"] = {
                key: kernel.report.get(key)
                for key in ("statements", "specialized", "fused", "blocked")
            }
        entry["interpreter"] = _measure_tier(
            plan, workload,
            lambda inputs, params, state: plan.execute(
                inputs=inputs, params=params, state=state
            ),
        )
        if kernel is not None:
            entry["kernel"] = _measure_tier(
                plan, workload,
                lambda inputs, params, state: kernel.try_execute(
                    plan, inputs, params, state
                ),
            )
            entry["steady_speedup"] = (
                entry["interpreter"]["steady_seconds"]
                / entry["kernel"]["steady_seconds"]
            )
        profiles[name] = entry
    payload = {"tier_steps": TIER_STEPS, "profiles": profiles}
    path = results_dir / "BENCH_profiles.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[written to {path}]")
    for name, entry in profiles.items():
        assert entry["kernel_built"], f"{name}: codegen declined"
        assert entry["kernel"]["executions"] == TIER_STEPS


def test_profiles_explain_runtime(benchmark, harness):
    def total_profile_time():
        total = 0.0
        for name in PROFILED:
            _, app, _ = harness.compiled(name)
            _, t = app.profile(top=1000)
            total += t
        return total

    total = benchmark.pedantic(total_profile_time, rounds=1, iterations=1)
    assert total > 0
