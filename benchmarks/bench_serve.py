"""Throughput scaling of the serving layer across worker counts.

Not a paper figure — this benchmarks the repro.serve subsystem itself on
a mixed four-workload trace. Workers emulate device occupancy (each
invocation sleeps for the cost model's accelerator seconds, scaled), so
the host thread blocks while the "accelerator" runs — exactly the regime
where a thread pool buys throughput, and an honest one even on a
single-CPU runner because sleeping releases the GIL.

The mix deliberately pairs light host compute with meaningful modelled
device time: heavy numpy execution (DCT-1024 spends ~100 ms of host CPU
per step) convoys against sleeping threads under the GIL on small
runners, which would benchmark CPython's scheduler rather than the
serving layer.

Asserted claims:

* 4 workers sustain >= 2.5x the single-worker throughput,
* the concurrent run's outputs are bit-identical to the serial baseline,
* plans were built exactly once per distinct (workload, config) pair —
  concurrency never duplicated compilation or planning work.

Alongside the text table, the scaling run writes
``results/BENCH_serve.json`` — throughput, p50/p95/p99 latency,
queue-wait, and compile/plan provenance counts per worker count — the
machine-readable twin of the table, matching ``BENCH_figures.json``.
"""

import json

from repro.serve import Server, replay, run_serial, synth_trace

MIX = ("MobileRobot", "ElecUse", "FFT-8192", "Hexacopter")
#: Sleep EMULATE x the modelled accelerator seconds per invocation —
#: chosen so per-step device occupancy dominates host compute (FFT-8192
#: sleeps ~3 s/step, ElecUse ~0.75 s/step) without any single request
#: becoming the wall-clock long pole of the 4-worker run.
EMULATE = 4000.0
REQUESTS = 16
MAX_STEPS = 2
SEED = 7


def _run_concurrent(trace, workers):
    server = Server(
        workers=workers,
        queue_capacity=len(trace),
        emulate_device=EMULATE,
    )
    with server:
        responses, _ = replay(server, trace)
    return responses, server.report()


def _report_row(report, speedup):
    """One BENCH_serve.json entry: the numbers an operator watches."""
    return {
        "workers": report.workers,
        "wall_seconds": report.wall_seconds,
        "throughput_rps": report.throughput,
        "speedup": speedup,
        "completed": report.completed,
        "failed": report.failed,
        "latency": {
            "p50_seconds": report.p50_seconds,
            "p95_seconds": report.p95_seconds,
            "p99_seconds": report.p99_seconds,
        },
        "queue_wait": {
            "mean_seconds": report.mean_queue_seconds,
            "max_seconds": report.max_queue_seconds,
            "peak_depth": report.queue_peak,
        },
        "provenance": {
            "compile": report.provenance_counts("compile"),
            "plan": report.provenance_counts("plan"),
        },
        "plan_reuse": {
            "plans_built": report.plans_built,
            "distinct_configs": report.distinct_configs,
            "ok": report.plan_reuse_ok,
        },
    }


def test_serve_throughput_scales_with_workers(emit, results_dir):
    trace = synth_trace(
        requests=REQUESTS,
        workloads=MIX,
        seed=SEED,
        max_steps=MAX_STEPS,
    )
    distinct = len({request.config_key() for request in trace})

    serial_responses, serial_report = run_serial(trace, emulate_device=EMULATE)
    assert all(response.ok for response in serial_responses)

    lines = [
        f"serve throughput, {REQUESTS}-request mixed trace "
        f"({', '.join(MIX)}), device emulation x{EMULATE:g}",
        f"  {'workers':>7s}  {'wall s':>8s}  {'req/s':>7s}  {'speedup':>7s}",
        f"  {1:7d}  {serial_report.wall_seconds:8.2f}  "
        f"{serial_report.throughput:7.2f}  {1.0:7.2f}",
    ]

    speedups = {}
    scaling = [_report_row(serial_report, 1.0)]
    for workers in (2, 4, 8):
        responses, report = _run_concurrent(trace, workers)
        if workers == 4 and report.throughput < 2.5 * serial_report.throughput:
            # One retry absorbs scheduler noise on loaded CI runners; a
            # genuine scaling regression fails both attempts.
            responses, report = _run_concurrent(trace, workers)

        # Correctness first: bit-identical to the serial baseline, and
        # no duplicated compilation or planning work under concurrency.
        for concurrent, reference in zip(responses, serial_responses):
            assert concurrent.ok
            assert concurrent.signature == reference.signature
        assert report.plan_reuse_ok, (
            f"{report.plans_built} plan(s) built for {report.distinct_configs} "
            f"distinct pair(s) at {workers} workers"
        )
        assert report.distinct_configs == distinct

        speedups[workers] = report.throughput / serial_report.throughput
        scaling.append(_report_row(report, speedups[workers]))
        lines.append(
            f"  {workers:7d}  {report.wall_seconds:8.2f}  "
            f"{report.throughput:7.2f}  {speedups[workers]:7.2f}"
        )

    emit("bench_serve", "\n".join(lines))
    payload = {
        "trace": {
            "requests": REQUESTS,
            "workloads": list(MIX),
            "seed": SEED,
            "max_steps": MAX_STEPS,
            "emulate_device": EMULATE,
            "distinct_configs": distinct,
        },
        "scaling": scaling,
    }
    path = results_dir / "BENCH_serve.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\n[written to {path}]")

    # The headline claim: 4 workers >= 2.5x one worker.
    assert speedups[4] >= 2.5, f"4-worker speedup only {speedups[4]:.2f}x"
    assert speedups[2] > 1.2, f"2-worker speedup only {speedups[2]:.2f}x"


def test_disabled_tracer_overhead_under_two_percent(emit):
    """Instrumentation is free when tracing is off.

    Every layer now calls into the observability tracer unconditionally
    (spans in the session/passes/plan/runtime/serve paths); the claim
    that makes that design acceptable is that the disabled path — one
    shared no-op span, no allocation, no locking — costs nothing
    measurable. Compared best-of-N against a fully *enabled* tracer run
    (a strictly harsher comparison than disabled-vs-uninstrumented),
    the throughput delta must stay under 2%.
    """
    from repro.obs import Tracer
    from repro.serve import Request

    trace = [
        Request(workload=workload, steps=2, request_id=f"ovh-{index}")
        for index, workload in enumerate(
            ("MobileRobot", "ElecUse") * 4
        )
    ]

    def one_wall(make_tracer):
        server = Server(
            workers=1, queue_capacity=len(trace), tracer=make_tracer()
        )
        with server:
            responses, _ = replay(server, trace)
        assert all(response.ok for response in responses)
        return server.report().wall_seconds

    # Interleave the two modes and take best-of-N each: back-to-back
    # pairs see the same machine conditions, and the minimum filters the
    # scheduler noise that dwarfs the actual per-span cost (~4 us/span,
    # ~80 spans/run). Alternate attempts absorb a systematically loaded
    # CI window.
    for attempt in range(3):
        walls = {"disabled": [], "enabled": []}
        for _ in range(5):
            walls["disabled"].append(one_wall(lambda: None))
            walls["enabled"].append(one_wall(Tracer))
        disabled = min(walls["disabled"])
        enabled = min(walls["enabled"])
        delta = abs(enabled - disabled) / disabled
        if delta < 0.02:
            break
    emit(
        "bench_serve_tracer_overhead",
        "tracer overhead on a 1-worker 8-request mixed trace (best of 5, "
        "interleaved)\n"
        f"  disabled: {disabled:8.4f} s wall\n"
        f"  enabled:  {enabled:8.4f} s wall\n"
        f"  delta:    {delta * 100:7.2f} %",
    )
    assert delta < 0.02, (
        f"tracer changed serve wall time by {delta * 100:.2f}% "
        f"(disabled {disabled:.4f}s vs enabled {enabled:.4f}s)"
    )
