"""Throughput scaling of the serving layer across worker counts.

Not a paper figure — this benchmarks the repro.serve subsystem itself on
a mixed four-workload trace. Workers emulate device occupancy (each
invocation sleeps for the cost model's accelerator seconds, scaled), so
the host thread blocks while the "accelerator" runs — exactly the regime
where a thread pool buys throughput, and an honest one even on a
single-CPU runner because sleeping releases the GIL.

The mix deliberately pairs light host compute with meaningful modelled
device time: heavy numpy execution (DCT-1024 spends ~100 ms of host CPU
per step) convoys against sleeping threads under the GIL on small
runners, which would benchmark CPython's scheduler rather than the
serving layer.

Asserted claims:

* 4 workers sustain >= 2.5x the single-worker throughput,
* the concurrent run's outputs are bit-identical to the serial baseline,
* plans were built exactly once per distinct (workload, config) pair —
  concurrency never duplicated compilation or planning work,
* on the sleep-dominated saturation trace, 8 workers sustain >= 6x the
  serial throughput in BOTH pool modes, and process mode (one worker
  process per drainer thread, compiles coalesced cross-process through
  the lease protocol) stays bit-identical to thread mode,
* a sustained 10k-request saturation run through the asyncio admission
  frontend completes every request with one bit-identical signature and
  the conservation identity intact.

Alongside the text table, the scaling run writes
``results/BENCH_serve.json`` — throughput, p50/p95/p99 latency,
queue-wait, and compile/plan provenance counts per worker count, plus
the thread-vs-process rows and the saturation summary — the
machine-readable twin of the table, matching ``BENCH_figures.json``.
Each test read-modify-writes its own section so partial reruns keep the
other sections' numbers.
"""

import json
import tempfile

from repro.serve import (
    Request,
    Server,
    replay,
    run_serial,
    saturate,
    synth_trace,
)

MIX = ("MobileRobot", "ElecUse", "FFT-8192", "Hexacopter")
#: Sleep EMULATE x the modelled accelerator seconds per invocation —
#: chosen so per-step device occupancy dominates host compute (FFT-8192
#: sleeps ~3 s/step, ElecUse ~0.75 s/step) without any single request
#: becoming the wall-clock long pole of the 4-worker run.
EMULATE = 4000.0
REQUESTS = 16
MAX_STEPS = 2
SEED = 7

#: The 8-worker saturation trace: sleep-dominated (device emulation is
#: where a pool scales even on a 1-CPU runner, because sleeping releases
#: the GIL), admitted longest-first so the long FFT requests never
#: become a makespan tail, single-step so the per-request device time is
#: bounded by one invocation.
SCALING_EMULATE = 2500.0
SCALING_MIX = (
    ("FFT-8192", 6),
    ("ElecUse", 24),
    ("MobileRobot", 9),
    ("Hexacopter", 9),
)


def _scaling_trace():
    return [
        Request(workload=name, steps=1)
        for name, count in SCALING_MIX
        for _ in range(count)
    ]


def _merge_results(path, section, payload):
    """Read-modify-write one top-level section of BENCH_serve.json."""
    document = {}
    if path.exists():
        document = json.loads(path.read_text())
    document[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def _run_concurrent(trace, workers):
    server = Server(
        workers=workers,
        queue_capacity=len(trace),
        emulate_device=EMULATE,
    )
    with server:
        responses, _ = replay(server, trace)
    return responses, server.report()


def _report_row(report, speedup):
    """One BENCH_serve.json entry: the numbers an operator watches."""
    return {
        "workers": report.workers,
        "wall_seconds": report.wall_seconds,
        "throughput_rps": report.throughput,
        "speedup": speedup,
        "completed": report.completed,
        "failed": report.failed,
        "latency": {
            "p50_seconds": report.p50_seconds,
            "p95_seconds": report.p95_seconds,
            "p99_seconds": report.p99_seconds,
        },
        "queue_wait": {
            "mean_seconds": report.mean_queue_seconds,
            "max_seconds": report.max_queue_seconds,
            "peak_depth": report.queue_peak,
        },
        "provenance": {
            "compile": report.provenance_counts("compile"),
            "plan": report.provenance_counts("plan"),
        },
        "plan_reuse": {
            "plans_built": report.plans_built,
            "distinct_configs": report.distinct_configs,
            "ok": report.plan_reuse_ok,
        },
    }


def test_serve_throughput_scales_with_workers(emit, results_dir):
    trace = synth_trace(
        requests=REQUESTS,
        workloads=MIX,
        seed=SEED,
        max_steps=MAX_STEPS,
    )
    distinct = len({request.config_key() for request in trace})

    serial_responses, serial_report = run_serial(trace, emulate_device=EMULATE)
    assert all(response.ok for response in serial_responses)

    lines = [
        f"serve throughput, {REQUESTS}-request mixed trace "
        f"({', '.join(MIX)}), device emulation x{EMULATE:g}",
        f"  {'workers':>7s}  {'wall s':>8s}  {'req/s':>7s}  {'speedup':>7s}",
        f"  {1:7d}  {serial_report.wall_seconds:8.2f}  "
        f"{serial_report.throughput:7.2f}  {1.0:7.2f}",
    ]

    speedups = {}
    scaling = [_report_row(serial_report, 1.0)]
    for workers in (2, 4, 8):
        responses, report = _run_concurrent(trace, workers)
        if workers == 4 and report.throughput < 2.5 * serial_report.throughput:
            # One retry absorbs scheduler noise on loaded CI runners; a
            # genuine scaling regression fails both attempts.
            responses, report = _run_concurrent(trace, workers)

        # Correctness first: bit-identical to the serial baseline, and
        # no duplicated compilation or planning work under concurrency.
        for concurrent, reference in zip(responses, serial_responses):
            assert concurrent.ok
            assert concurrent.signature == reference.signature
        assert report.plan_reuse_ok, (
            f"{report.plans_built} plan(s) built for {report.distinct_configs} "
            f"distinct pair(s) at {workers} workers"
        )
        assert report.distinct_configs == distinct

        speedups[workers] = report.throughput / serial_report.throughput
        scaling.append(_report_row(report, speedups[workers]))
        lines.append(
            f"  {workers:7d}  {report.wall_seconds:8.2f}  "
            f"{report.throughput:7.2f}  {speedups[workers]:7.2f}"
        )

    emit("bench_serve", "\n".join(lines))
    path = results_dir / "BENCH_serve.json"
    _merge_results(
        path,
        "trace",
        {
            "requests": REQUESTS,
            "workloads": list(MIX),
            "seed": SEED,
            "max_steps": MAX_STEPS,
            "emulate_device": EMULATE,
            "distinct_configs": distinct,
        },
    )
    _merge_results(path, "scaling", scaling)
    print(f"\n[written to {path}]")

    # The headline claim: 4 workers >= 2.5x one worker.
    assert speedups[4] >= 2.5, f"4-worker speedup only {speedups[4]:.2f}x"
    assert speedups[2] > 1.2, f"2-worker speedup only {speedups[2]:.2f}x"


def _pool_row(mode, report, serial_report):
    return {
        "mode": mode,
        "workers": report.workers,
        "wall_seconds": report.wall_seconds,
        "throughput_rps": report.throughput,
        "speedup": report.throughput / serial_report.throughput,
        "completed": report.completed,
        "failed": report.failed,
        "processes": report.processes,
        "worker_crashes": report.worker_crashes,
        "conservation_ok": report.conservation_ok,
        "plan_reuse_ok": report.plan_reuse_ok,
        "latency": {
            "p50_seconds": report.p50_seconds,
            "p95_seconds": report.p95_seconds,
            "p99_seconds": report.p99_seconds,
        },
        "provenance": {
            "compile": report.provenance_counts("compile"),
            "plan": report.provenance_counts("plan"),
        },
    }


def test_process_pool_matches_thread_pool_and_scales(emit, results_dir):
    """Thread-vs-process scaling at 8 workers on the saturation trace.

    The serial baseline and both concurrent runs execute the identical
    trace; the process run shares one disk cache tier, so its children
    coalesce compiles through the lease protocol instead of compiling
    once per process. One retry per pool mode absorbs scheduler noise on
    loaded runners — a genuine scaling regression fails both attempts.
    """
    from repro.driver import CompilerSession

    trace = _scaling_trace()
    serial_responses, serial_report = run_serial(
        trace, emulate_device=SCALING_EMULATE
    )
    assert all(response.ok for response in serial_responses)
    reference = [response.signature for response in serial_responses]

    def run_thread():
        server = Server(
            workers=8,
            queue_capacity=len(trace),
            emulate_device=SCALING_EMULATE,
        )
        with server:
            responses, _ = replay(server, trace)
        return responses, server.report()

    def run_process():
        with tempfile.TemporaryDirectory() as shared:
            session = CompilerSession(cache_dir=shared)
            server = Server(
                session=session,
                workers=8,
                queue_capacity=len(trace),
                emulate_device=SCALING_EMULATE,
                pool="process",
            )
            with server:
                responses, _ = replay(server, trace)
        return responses, server.report()

    rows = [_pool_row("serial", serial_report, serial_report)]
    lines = [
        f"serve pool scaling, {len(trace)}-request longest-first trace "
        f"({', '.join(f'{count}x{name}' for name, count in SCALING_MIX)}), "
        f"device emulation x{SCALING_EMULATE:g}",
        f"  {'mode':>8s}  {'workers':>7s}  {'wall s':>8s}  {'req/s':>7s}  "
        f"{'speedup':>7s}",
        f"  {'serial':>8s}  {1:7d}  {serial_report.wall_seconds:8.2f}  "
        f"{serial_report.throughput:7.2f}  {1.0:7.2f}",
    ]
    speedups = {}
    for mode, run in (("thread", run_thread), ("process", run_process)):
        responses, report = run()
        if report.throughput < 6.0 * serial_report.throughput:
            responses, report = run()

        assert all(response.ok for response in responses)
        # Bit-identity across pool modes: both match the serial run.
        assert [r.signature for r in responses] == reference, (
            f"{mode} pool diverged from the serial baseline"
        )
        assert report.conservation_ok
        assert report.plan_reuse_ok, (
            f"{mode}: {report.plans_built} plan(s) built for "
            f"{report.distinct_configs} distinct pair(s), expected "
            f"{report.expected_plans}"
        )
        assert report.worker_crashes == 0
        if mode == "process":
            assert report.processes == 8

        speedups[mode] = report.throughput / serial_report.throughput
        rows.append(_pool_row(mode, report, serial_report))
        lines.append(
            f"  {mode:>8s}  {report.workers:7d}  "
            f"{report.wall_seconds:8.2f}  {report.throughput:7.2f}  "
            f"{speedups[mode]:7.2f}"
        )

    emit("bench_serve_pools", "\n".join(lines))
    _merge_results(
        results_dir / "BENCH_serve.json",
        "pool_scaling",
        {
            "trace": {
                "requests": len(trace),
                "mix": {name: count for name, count in SCALING_MIX},
                "emulate_device": SCALING_EMULATE,
                "order": "longest-first",
            },
            "rows": rows,
        },
    )

    # The headline claim: 8 workers >= 6x serial in both pool modes.
    for mode, speedup in speedups.items():
        assert speedup >= 6.0, (
            f"8-worker {mode}-pool speedup only {speedup:.2f}x"
        )


def test_sustained_saturation_via_async_frontend(emit, results_dir):
    """10k requests through the asyncio admission layer, one hot config.

    After the first request compiles and plans, the run measures the
    serving layer itself — admission, scheduling, dispatch, counter
    bookkeeping — at sustained six-figure-per-minute request rates.
    Every request must complete, bit-identically, with the conservation
    identity intact.
    """
    server = Server(workers=4, queue_capacity=256)
    with server:
        summary = saturate(
            server, requests=10_000, workload="MobileRobot", max_inflight=256
        )
    report = server.report()

    assert summary["completed"] == 10_000
    assert summary["errors"] == 0
    assert len(summary["signatures"]) == 1
    assert report.conservation_ok
    assert report.plan_reuse_ok

    emit(
        "bench_serve_saturation",
        "sustained saturation, 10000 single-config requests through the "
        "asyncio frontend (4 workers)\n"
        f"  wall:       {summary['wall_seconds']:8.2f} s\n"
        f"  throughput: {summary['throughput_rps']:8.1f} req/s\n"
        f"  completed:  {summary['completed']:8d} "
        f"({summary['errors']} error(s), "
        f"{len(summary['signatures'])} distinct signature(s))",
    )
    _merge_results(
        results_dir / "BENCH_serve.json",
        "saturation",
        {
            "requests": summary["requests"],
            "workers": 4,
            "pool": "thread",
            "completed": summary["completed"],
            "errors": summary["errors"],
            "wall_seconds": summary["wall_seconds"],
            "throughput_rps": summary["throughput_rps"],
            "distinct_signatures": len(summary["signatures"]),
            "conservation_ok": report.conservation_ok,
        },
    )


def test_disabled_tracer_overhead_under_two_percent(emit):
    """Instrumentation is free when tracing is off.

    Every layer now calls into the observability tracer unconditionally
    (spans in the session/passes/plan/runtime/serve paths); the claim
    that makes that design acceptable is that the disabled path — one
    shared no-op span, no allocation, no locking — costs nothing
    measurable. Compared best-of-N against a fully *enabled* tracer run
    (a strictly harsher comparison than disabled-vs-uninstrumented),
    the throughput delta must stay under 2%.
    """
    from repro.obs import Tracer
    from repro.serve import Request

    trace = [
        Request(workload=workload, steps=2, request_id=f"ovh-{index}")
        for index, workload in enumerate(
            ("MobileRobot", "ElecUse") * 4
        )
    ]

    def one_wall(make_tracer):
        server = Server(
            workers=1, queue_capacity=len(trace), tracer=make_tracer()
        )
        with server:
            responses, _ = replay(server, trace)
        assert all(response.ok for response in responses)
        return server.report().wall_seconds

    # Interleave the two modes and take best-of-N each: back-to-back
    # pairs see the same machine conditions, and the minimum filters the
    # scheduler noise that dwarfs the actual per-span cost (~4 us/span,
    # ~80 spans/run). Alternate attempts absorb a systematically loaded
    # CI window.
    for attempt in range(3):
        walls = {"disabled": [], "enabled": []}
        for _ in range(5):
            walls["disabled"].append(one_wall(lambda: None))
            walls["enabled"].append(one_wall(Tracer))
        disabled = min(walls["disabled"])
        enabled = min(walls["enabled"])
        delta = abs(enabled - disabled) / disabled
        if delta < 0.02:
            break
    emit(
        "bench_serve_tracer_overhead",
        "tracer overhead on a 1-worker 8-request mixed trace (best of 5, "
        "interleaved)\n"
        f"  disabled: {disabled:8.4f} s wall\n"
        f"  enabled:  {enabled:8.4f} s wall\n"
        f"  delta:    {delta * 100:7.2f} %",
    )
    assert delta < 0.02, (
        f"tracer changed serve wall time by {delta * 100:.2f}% "
        f"(disabled {disabled:.4f}s vs enabled {enabled:.4f}s)"
    )
