"""Throughput scaling of the serving layer across worker counts.

Not a paper figure — this benchmarks the repro.serve subsystem itself on
a mixed four-workload trace. Workers emulate device occupancy (each
invocation sleeps for the cost model's accelerator seconds, scaled), so
the host thread blocks while the "accelerator" runs — exactly the regime
where a thread pool buys throughput, and an honest one even on a
single-CPU runner because sleeping releases the GIL.

The mix deliberately pairs light host compute with meaningful modelled
device time: heavy numpy execution (DCT-1024 spends ~100 ms of host CPU
per step) convoys against sleeping threads under the GIL on small
runners, which would benchmark CPython's scheduler rather than the
serving layer.

Asserted claims:

* 4 workers sustain >= 2.5x the single-worker throughput,
* the concurrent run's outputs are bit-identical to the serial baseline,
* plans were built exactly once per distinct (workload, config) pair —
  concurrency never duplicated compilation or planning work.
"""

from repro.serve import Server, replay, run_serial, synth_trace

MIX = ("MobileRobot", "ElecUse", "FFT-8192", "Hexacopter")
#: Sleep EMULATE x the modelled accelerator seconds per invocation —
#: chosen so per-step device occupancy dominates host compute (FFT-8192
#: sleeps ~3 s/step, ElecUse ~0.75 s/step) without any single request
#: becoming the wall-clock long pole of the 4-worker run.
EMULATE = 4000.0
REQUESTS = 16
MAX_STEPS = 2
SEED = 7


def _run_concurrent(trace, workers):
    server = Server(
        workers=workers,
        queue_capacity=len(trace),
        emulate_device=EMULATE,
    )
    with server:
        responses, _ = replay(server, trace)
    return responses, server.report()


def test_serve_throughput_scales_with_workers(emit):
    trace = synth_trace(
        requests=REQUESTS,
        workloads=MIX,
        seed=SEED,
        max_steps=MAX_STEPS,
    )
    distinct = len({request.config_key() for request in trace})

    serial_responses, serial_report = run_serial(trace, emulate_device=EMULATE)
    assert all(response.ok for response in serial_responses)

    lines = [
        f"serve throughput, {REQUESTS}-request mixed trace "
        f"({', '.join(MIX)}), device emulation x{EMULATE:g}",
        f"  {'workers':>7s}  {'wall s':>8s}  {'req/s':>7s}  {'speedup':>7s}",
        f"  {1:7d}  {serial_report.wall_seconds:8.2f}  "
        f"{serial_report.throughput:7.2f}  {1.0:7.2f}",
    ]

    speedups = {}
    for workers in (2, 4, 8):
        responses, report = _run_concurrent(trace, workers)
        if workers == 4 and report.throughput < 2.5 * serial_report.throughput:
            # One retry absorbs scheduler noise on loaded CI runners; a
            # genuine scaling regression fails both attempts.
            responses, report = _run_concurrent(trace, workers)

        # Correctness first: bit-identical to the serial baseline, and
        # no duplicated compilation or planning work under concurrency.
        for concurrent, reference in zip(responses, serial_responses):
            assert concurrent.ok
            assert concurrent.signature == reference.signature
        assert report.plan_reuse_ok, (
            f"{report.plans_built} plan(s) built for {report.distinct_configs} "
            f"distinct pair(s) at {workers} workers"
        )
        assert report.distinct_configs == distinct

        speedups[workers] = report.throughput / serial_report.throughput
        lines.append(
            f"  {workers:7d}  {report.wall_seconds:8.2f}  "
            f"{report.throughput:7.2f}  {speedups[workers]:7.2f}"
        )

    emit("bench_serve", "\n".join(lines))

    # The headline claim: 4 workers >= 2.5x one worker.
    assert speedups[4] >= 2.5, f"4-worker speedup only {speedups[4]:.2f}x"
    assert speedups[2] > 1.2, f"2-worker speedup only {speedups[2]:.2f}x"
