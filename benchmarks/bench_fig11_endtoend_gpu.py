"""Figure 11: end-to-end runtime/PPW vs both GPUs per acceleration combo.

Paper headline: full cross-domain acceleration gives large PPW wins over
the Titan Xp (8.3x BrainStimul, 9.2x OptionPricing) and moderate ones over
the Jetson; runtime against the Titan is closer to parity.
"""

import pytest

from repro.eval.figures import figure11


@pytest.fixture(scope="module")
def fig11(harness):
    return figure11(harness)


def test_fig11_regenerates(benchmark, harness, emit):
    fig11a, fig11b = benchmark.pedantic(
        lambda: figure11(harness), rounds=1, iterations=1
    )
    emit("figure11a", fig11a.render())
    emit("figure11b", fig11b.render())
    assert len(fig11a.rows) == 7
    assert len(fig11b.rows) == 3


def test_fig11a_full_ppw_beats_titan(fig11):
    fig11a, _ = fig11
    full = next(row for row in fig11a.rows if row[0] == "FFT+LR+MPC")
    _, runtime_titan, ppw_titan, runtime_jetson, ppw_jetson = full
    assert ppw_titan > 2.0  # paper: 8.3x
    assert ppw_jetson > 1.0  # paper: 2.8x


def test_fig11a_full_is_best_combo(fig11):
    fig11a, _ = fig11
    full = next(row for row in fig11a.rows if row[0] == "FFT+LR+MPC")
    for row in fig11a.rows:
        assert full[2] >= row[2] * 0.99, row[0]  # PPW vs Titan


def test_fig11b_full_ppw(fig11):
    _, fig11b = fig11
    full = next(row for row in fig11b.rows if "+" in row[0])
    assert full[2] > 2.0  # paper: 9.2x over Titan
    assert full[4] > 0.8  # paper: 1.9x over Jetson


def test_fig11_ppw_exceeds_runtime_ratio_vs_titan(fig11):
    # The Titan burns 250 W: even where it is fast, it is inefficient.
    fig11a, fig11b = fig11
    for row in list(fig11a.rows) + list(fig11b.rows):
        assert row[2] > row[1], row[0]
