"""Extending the stack: a custom compiler pass and a custom accelerator.

The paper positions PolyMath as "the very first extensible, modular, and
open-source computation stack" for cross-domain acceleration. This example
shows both extension points:

* a user-defined pass (strength reduction: ``x * 2`` -> ``x + x``) plugged
  into the standard pipeline;
* a user-defined accelerator backend (a fictional vector DSP) given its
  own AcceleratorSpec and hardware parameters, then used as a lowering and
  translation target.

Run with::

    python examples/custom_pass_and_target.py
"""

import numpy as np

from repro import CompilerSession
from repro.hw import HardwareParams
from repro.passes import PassManager, Pass, default_pipeline
from repro.pmlang import ast_nodes as ast
from repro.srdfg import Executor, build, classify
from repro.targets import Accelerator, AcceleratorSpec

SOURCE = """
main(input float x[1024], param float gain, output float y[1024]) {
  index i[0:1023];
  float t[1024];
  t[i] = x[i] * 2.0;
  y[i] = tanh(t[i] * gain);
}
"""


class StrengthReduction(Pass):
    """Rewrite ``expr * 2`` into ``expr + expr`` (adds are cheaper)."""

    name = "strength-reduction"

    def _rewrite(self, expr):
        if isinstance(expr, ast.BinOp):
            left = self._rewrite(expr.left)
            right = self._rewrite(expr.right)
            if (
                expr.op == "*"
                and isinstance(right, ast.Literal)
                and right.value == 2.0
                and isinstance(left, (ast.Indexed, ast.Name))
            ):
                return ast.BinOp(op="+", left=left, right=left, line=expr.line)
            return ast.BinOp(op=expr.op, left=left, right=right, line=expr.line)
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(
                func=expr.func,
                args=tuple(self._rewrite(arg) for arg in expr.args),
                line=expr.line,
            )
        return expr

    def run(self, graph):
        for node in graph.compute_nodes():
            stmt = node.attrs["stmt"]
            new_stmt = ast.Assign(
                target=stmt.target,
                target_indices=stmt.target_indices,
                value=self._rewrite(stmt.value),
                line=stmt.line,
            )
            node.attrs["stmt"] = new_stmt
            node.attrs["descriptor"] = classify(
                new_stmt, node.attrs["index_ranges"], getattr(graph, "reductions", {})
            )
            node.name = node.attrs["descriptor"].opname
        return graph


class VectorDsp(Accelerator):
    """A fictional 64-lane vector DSP at 500 MHz with tanh hardware."""

    name = "vdsp"
    domain = "DSP"
    spec = AcceleratorSpec(
        supported_ops=frozenset(
            {"copy", "elemwise", "elemwise_add", "elemwise_mul", "map_tanh"}
        ),
        scalar_classes=frozenset({"alu", "mul", "nonlinear"}),
    )
    params = HardwareParams(
        name="VectorDSP (custom)",
        frequency_hz=500e6,
        throughput={"alu": 64.0, "mul": 64.0, "div": 4.0, "nonlinear": 64.0},
        power_w=2.0,
        dram_bw=8e9,
        onchip_bw=128e9,
        dispatch_overhead_s=1e-7,
        efficiency=0.8,
    )


def main():
    rng = np.random.default_rng(0)
    x = rng.normal(size=1024)

    # Reference execution, no custom pass.
    plain = Executor(build(SOURCE, domain="DSP")).run(
        inputs={"x": x}, params={"gain": 0.5}
    )

    # Pipeline with the custom pass appended.
    pipeline = default_pipeline().add(StrengthReduction())
    graph = pipeline.run(build(SOURCE, domain="DSP")).graph
    tuned = Executor(graph).run(inputs={"x": x}, params={"gain": 0.5})
    assert np.allclose(plain.outputs["y"], tuned.outputs["y"])

    muls_before = sum(
        node.attrs["descriptor"].op_counts.get("mul", 0)
        for node in build(SOURCE, domain="DSP").compute_nodes()
    )
    muls_after = sum(
        node.attrs["descriptor"].op_counts.get("mul", 0)
        for node in graph.compute_nodes()
    )
    print(f"strength reduction: multiplies {muls_before} -> {muls_after}")

    # Compile for the custom accelerator, with the custom pass installed
    # in the session's pipeline. The pass-pipeline fingerprint is part of
    # the artifact cache key, so this never aliases a default-pipeline
    # compile of the same source.
    session = CompilerSession(
        {"DSP": VectorDsp()},
        pipeline_factory=lambda: default_pipeline().add(StrengthReduction()),
    )
    app = session.compile(SOURCE, domain="DSP")
    print("\nVectorDSP program:")
    print(app.programs["DSP"].listing())
    result, stats, _ = app.run(inputs={"x": x}, params={"gain": 0.5})
    assert np.allclose(result.outputs["y"], plain.outputs["y"])
    print(f"\nestimated runtime on VectorDSP: {stats.seconds * 1e6:.3f} us")


if __name__ == "__main__":
    main()
