"""BrainStimul: the paper's flagship end-to-end application (§II).

One PMLang program spanning three domains — FFT (DSP), logistic-regression
biomarker classification (Data Analytics), and MPC stimulation control
(Robotics) — compiled to three accelerators (DECO, TABLA, ROBOX) on one
SoC. Reproduces the Fig 10a acceleration-combination study for this
application.

Run with::

    python examples/brain_stimulation.py
"""

import itertools

import numpy as np

from repro import CompilerSession, SoCRuntime, default_accelerators, make_xeon
from repro.srdfg import Executor
from repro.workloads import get_workload


def main():
    workload = get_workload("BrainStimul")
    session = CompilerSession(default_accelerators())
    app = session.compile(workload.source(), domain=workload.domain)
    accelerators = app.accelerators

    print("per-domain accelerator programs:")
    for domain, program in sorted(app.programs.items()):
        kernel = workload.kernels_by_domain.get(domain, "?")
        print(f"  {kernel:4s} -> {program.target:14s} ({len(program)} IR fragments)")

    # Functionally run a few closed-loop iterations.
    executor = Executor(app.graph)
    state = {key: np.asarray(value) for key, value in workload.initial_state().items()}
    params = workload.params()
    print("\nclosed-loop stimulation signals:")
    for step in range(4):
        result = executor.run(
            inputs=workload.inputs(step, None), params=params, state=state
        )
        state = result.state
        signal = result.outputs["ctrl_sgnl"]
        print(f"  step {step}: ctrl_sgnl = [{signal[0]:+.4f}, {signal[1]:+.4f}]")

    # Fig 10a: every acceleration combination vs the CPU.
    soc = SoCRuntime(accelerators)
    iterations = workload.perf_iterations
    cpu = make_xeon().estimate_graph(app.graph).scaled(iterations)
    domains = list(workload.kernels_by_domain)

    print(f"\n{'accelerated kernels':24s} {'runtime_x':>10s} {'energy_x':>10s}")
    for size in range(1, len(domains) + 1):
        for subset in itertools.combinations(domains, size):
            report = soc.execute(app, accelerated_domains=subset)
            total = report.total.scaled(iterations)
            label = "+".join(workload.kernels_by_domain[d] for d in subset)
            print(
                f"{label:24s} {cpu.seconds / total.seconds:10.2f} "
                f"{cpu.energy_j / total.energy_j:10.2f}"
            )

    full = soc.execute(app)
    print(
        f"\ncross-domain communication: "
        f"{100 * full.communication_fraction:.1f}% of accelerated runtime"
    )


if __name__ == "__main__":
    main()
