"""Quickstart: write a PMLang program, inspect its srDFG, execute it, and
compile it for an accelerator.

Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import CompilerSession, Executor, build, default_accelerators
from repro.srdfg.visualize import render_text

# A tiny cross-domain-flavoured program: a weighted moving average (DSP
# style) followed by a thresholded score (analytics style). Note the
# formula-like statements: index variables instead of loops, a group
# reduction for the dot product, and type modifiers on every argument.
SOURCE = """
smooth(input float x[n], param float w[k], output float y[n]) {
  index i[0:n-1], j[0:k-1];
  y[i] = sum[j: i + j < n](w[j] * x[i + j]);
}

score(input float y[n], param float bias, output float s) {
  index i[0:n-1];
  s = sigmoid(sum[i](y[i]) / n + bias);
}

main(input float x[16], param float w[4], param float bias,
     output float s) {
  float y[16];
  DSP: smooth(x, w, y);
  DA: score(y, bias, s);
}
"""


def main():
    # 1. Build the simultaneously-recursive dataflow graph.
    graph = build(SOURCE, domain="DSP")
    print("=== srDFG (all granularities) ===")
    print(render_text(graph, max_depth=2))

    # 2. Execute it functionally through the srDFG interpreter.
    rng = np.random.default_rng(0)
    x = rng.normal(size=16)
    w = np.array([0.4, 0.3, 0.2, 0.1])
    result = Executor(graph).run(
        inputs={"x": x}, params={"w": w, "bias": 0.1}
    )
    print(f"score = {float(result.outputs['s']):.6f}")

    # 3. Compile for the Table V accelerators through a CompilerSession:
    # the DSP kernel goes to DECO, the analytics kernel to TABLA, with
    # load/store fragments at the domain boundary (Algorithm 2). The
    # session instruments every stage and caches the artifact, so a
    # recompile of the same program is a cache hit.
    session = CompilerSession(default_accelerators())
    app = session.compile(SOURCE, domain="DSP")
    for domain, program in app.programs.items():
        print(f"\n=== {domain} program on {program.target} ===")
        print(program.listing())

    session.compile(SOURCE, domain="DSP")  # served from the artifact cache
    print("\n=== compilation stage report ===")
    print(session.stats_report())

    # 4. Run the compiled application: same functional result, plus a
    # cycle/energy estimate from the accelerator models.
    outputs, stats, per_domain = app.run(
        inputs={"x": x}, params={"w": w, "bias": 0.1}
    )
    assert np.allclose(outputs.outputs["s"], result.outputs["s"])
    print(f"\nestimated runtime: {stats.seconds * 1e6:.3f} us")
    print(f"estimated energy:  {stats.energy_j * 1e6:.3f} uJ")
    for domain, domain_stats in per_domain.items():
        print(f"  {domain}: {domain_stats.seconds * 1e6:.3f} us")


if __name__ == "__main__":
    main()
