"""OptionPricing: two Data-Analytics kernels on two different accelerators.

Sentiment analysis (logistic regression, TABLA) steers the risk-free rate
of a Black-Scholes evaluation (HyperStreams). Both kernels share the DA
domain; the Black-Scholes instantiation is retagged with a private domain
label so Algorithm 2 routes it to its own accelerator — exactly the
finer-than-domain assignment the paper uses for this application.

Run with::

    python examples/option_pricing.py
"""

import numpy as np

from repro import CompilerSession, SoCRuntime, default_accelerators, make_xeon
from repro.srdfg import Executor
from repro.workloads import get_workload


def main():
    workload = get_workload("OptionPricing")
    session = CompilerSession(default_accelerators(workload.accelerator_overrides))
    app = session.compile(
        workload.source(),
        domain=workload.domain,
        component_domains=workload.component_domains,
    )
    accelerators = app.accelerators

    print("kernel -> accelerator assignment:")
    for domain, program in sorted(app.programs.items()):
        kernel = workload.kernels_by_domain.get(domain, "?")
        print(f"  {kernel:5s} ({domain:8s}) -> {program.target}")

    executor = Executor(app.graph)
    inputs = workload.inputs(0, None)
    result = executor.run(inputs=inputs, params=workload.params())
    prices = result.outputs["call"]
    sentiment = float(result.outputs["sentiment"])
    print(f"\nsentiment score: {sentiment:.4f}")
    print(
        f"priced {prices.size} options: mean={prices.mean():.3f} "
        f"min={prices.min():.3f} max={prices.max():.3f}"
    )

    # Sanity: a more bullish sentiment (higher risk-free rate) raises call
    # prices.
    bullish = dict(inputs)
    bullish["x"] = inputs["x"] * 4.0
    bullish_prices = executor.run(
        inputs=bullish, params=workload.params()
    ).outputs["call"]
    print(f"bullish repricing moves mean by {bullish_prices.mean() - prices.mean():+.5f}")

    # Acceleration combinations (Fig 10b).
    soc = SoCRuntime(accelerators)
    iterations = workload.perf_iterations
    cpu = make_xeon().estimate_graph(app.graph).scaled(iterations)
    print(f"\n{'accelerated kernels':20s} {'runtime_x':>10s} {'energy_x':>10s}")
    for subset, label in (
        (("DA",), "LR"),
        (("DA-BLKS",), "BLKS"),
        (("DA", "DA-BLKS"), "LR+BLKS"),
    ):
        report = soc.execute(app, accelerated_domains=subset)
        total = report.total.scaled(iterations)
        print(
            f"{label:20s} {cpu.seconds / total.seconds:10.2f} "
            f"{cpu.energy_j / total.energy_j:10.2f}"
        )


if __name__ == "__main__":
    main()
