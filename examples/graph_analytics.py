"""Graph analytics: BFS as a vertex program on GRAPHICIONADO.

Builds an R-MAT power-law graph, expresses one BFS relaxation sweep as a
predicated group reduction in PMLang (Fig 6 of the paper), compiles it to
GRAPHICIONADO's Process/Reduce/Apply pipeline IR, and iterates the sweep
to convergence — checking against a networkx shortest-path oracle.

Run with::

    python examples/graph_analytics.py
"""

import networkx as nx
import numpy as np

from repro import CompilerSession, default_accelerators
from repro.srdfg import Executor
from repro.workloads import reference
from repro.workloads.datasets import rmat_graph

VERTICES = 512
AVG_DEGREE = 12

SOURCE = f"""
main(param bin adj[{VERTICES}][{VERTICES}], state float dist[{VERTICES}],
     output float frontier[{VERTICES}]) {{
  index u[0:{VERTICES - 1}], v[0:{VERTICES - 1}];
  float relax[{VERTICES}];
  relax[v] = min[u: adj[u][v] == 1](dist[u] + 1.0);
  frontier[v] = fmin(relax[v], dist[v]);
  dist[v] = fmin(relax[v], dist[v]);
}}
"""


def main():
    graph_data = rmat_graph(VERTICES, AVG_DEGREE, seed=42)
    print(
        f"R-MAT graph: {graph_data.vertices} vertices, {graph_data.edges} edges "
        f"(density {graph_data.edges / graph_data.vertices**2:.4f})"
    )

    # Graph-shape hints are bound per compile (onto accelerator copies in
    # the returned application), never written into shared backends.
    session = CompilerSession(default_accelerators())
    app = session.compile(SOURCE, domain="GA", data_hints=graph_data.hints)

    pipeline = next(
        fragment
        for fragment in app.programs["GA"].fragments
        if fragment.op == "pipeline"
    )
    print(f"GRAPHICIONADO pipeline stages: {' -> '.join(pipeline.attrs['stages'])}")

    # Iterate relaxation sweeps until the distance vector fixes.
    executor = Executor(app.graph)
    dist = np.full(VERTICES, reference.UNREACHED)
    dist[graph_data.source] = 0.0
    state = {"dist": dist}
    sweeps = 0
    while True:
        result = executor.run(params={"adj": graph_data.adjacency}, state=state)
        sweeps += 1
        if np.allclose(result.state["dist"], state["dist"]):
            break
        state = result.state
    final = state["dist"]
    reached = final < reference.UNREACHED
    print(f"converged in {sweeps} sweeps; reached {reached.sum()}/{VERTICES} vertices")

    # Oracle: networkx BFS levels from the same source.
    oracle = nx.from_numpy_array(graph_data.adjacency, create_using=nx.DiGraph)
    lengths = nx.single_source_shortest_path_length(oracle, graph_data.source)
    expected = np.full(VERTICES, reference.UNREACHED)
    for vertex, level in lengths.items():
        expected[vertex] = level
    assert np.allclose(final, expected), "BFS disagrees with networkx"
    print("levels match networkx single_source_shortest_path_length")

    # Per-sweep cost: the pipeline streams edges, not the dense lattice.
    stats = app.accelerators["GA"].estimate(app.programs["GA"])
    print(f"estimated sweep time on GRAPHICIONADO: {stats.seconds * 1e6:.2f} us")


if __name__ == "__main__":
    main()
