"""Design-space exploration: sizing VTA for ResNet-18 inference.

With the stack's cost models in place, an architect can sweep hardware
configurations for a fixed PMLang program and read off the
runtime/energy Pareto frontier. This sweeps the VTA GEMM-array size (as
a throughput scale) and clock frequency for batch-1 ResNet-18, showing
where the design stops being compute-bound and extra MACs are wasted.

Run with::

    python examples/design_space_exploration.py
"""

from repro.eval.dse import explore, pareto, render
from repro.targets import Vta


def main():
    grid = {
        "throughput_scale": [0.25, 0.5, 1.0, 2.0, 4.0],
        "frequency_hz": [100e6, 150e6, 300e6],
    }
    points = explore("ResNet-18", Vta, grid)
    print(render(points, title="VTA design space for ResNet-18 (batch-1 inference)"))

    frontier = pareto(points)
    print(f"\nPareto frontier ({len(frontier)} of {len(points)} points):")
    for point in frontier:
        print(
            f"  scale={point.config['throughput_scale']:<5g} "
            f"f={point.config['frequency_hz'] / 1e6:.0f} MHz -> "
            f"{point.seconds * 1e3:.3f} ms, {point.energy_j * 1e3:.3f} mJ"
        )

    best = min(points, key=lambda p: p.edp)
    print(
        f"\nbest energy-delay product: scale={best.config['throughput_scale']}, "
        f"f={best.config['frequency_hz'] / 1e6:.0f} MHz "
        f"(EDP {best.edp:.3e} J*s)"
    )


if __name__ == "__main__":
    main()
