"""MobileRobot MPC (the paper's Fig 3/4): closed-loop trajectory tracking.

Compiles the Fig 4 PMLang program for ROBOX, drives a simple unicycle
plant with the produced control signals for a number of steps, and
compares estimated runtime/energy against the Xeon, Titan Xp, and Jetson
baselines — a single-workload slice of Fig 7/8.

Run with::

    python examples/mobile_robot_mpc.py
"""

import numpy as np

from repro import (
    CompilerSession,
    default_accelerators,
    make_jetson,
    make_titan_xp,
    make_xeon,
)
from repro.workloads import get_workload

STEPS = 40


def main():
    workload = get_workload("MobileRobot")
    session = CompilerSession(default_accelerators())
    app = session.compile(workload.source(), domain="RBT")

    # Closed loop: the robot state evolves under the produced (v, w)
    # control signal; the controller sees the noisy state.
    rng = np.random.default_rng(3)
    pos = np.array([0.0, 0.0, 0.1])  # x, y, heading
    state = {"ctrl_mdl": np.zeros(workload.ctrl_len)}
    params = workload.params()
    trace = [pos.copy()]

    from repro.srdfg import Executor

    executor = Executor(app.graph)
    for _ in range(STEPS):
        result = executor.run(
            inputs={"pos": pos + 0.01 * rng.normal(size=3)},
            params=params,
            state=state,
        )
        state = result.state
        v, w = np.clip(result.outputs["ctrl_sgnl"], -1.0, 1.0)
        pos = pos + 0.1 * np.array([v * np.cos(pos[2]), v * np.sin(pos[2]), w])
        trace.append(pos.copy())

    trace = np.array(trace)
    print(f"drove {STEPS} control steps; final pose "
          f"x={trace[-1][0]:+.3f} y={trace[-1][1]:+.3f} th={trace[-1][2]:+.3f}")
    print(f"path length: {np.linalg.norm(np.diff(trace[:, :2], axis=0), axis=1).sum():.3f}")

    # Performance model comparison for one paper-scale run (1024 steps).
    iterations = workload.perf_iterations
    accel = app.accelerators["RBT"].estimate(app.programs["RBT"]).scaled(iterations)
    cpu = make_xeon().estimate_graph(app.graph).scaled(iterations)
    titan = make_titan_xp().estimate_graph(app.graph).scaled(iterations)
    jetson = make_jetson().estimate_graph(app.graph).scaled(iterations)

    print(f"\n{'platform':22s} {'runtime':>12s} {'energy':>12s}")
    for name, stats in (
        ("ROBOX (PolyMath)", accel),
        ("Xeon E-2176G", cpu),
        ("Titan Xp", titan),
        ("Jetson Xavier", jetson),
    ):
        print(f"{name:22s} {stats.seconds * 1e3:9.3f} ms {stats.energy_j * 1e3:9.3f} mJ")
    print(f"\nspeedup over CPU: {cpu.seconds / accel.seconds:.2f}x, "
          f"energy reduction: {cpu.energy_j / accel.energy_j:.1f}x")


if __name__ == "__main__":
    main()
