"""Unit suite for shape bindings, bucket policies, and specialization keys.

The contracts under test:

* :class:`ShapeBinding` is immutable, canonically ordered, and rejects
  non-positive or non-integer extents with a :class:`ShapeError` that
  names the offending dim,
* :class:`BucketPolicy` only ever rounds *up* (a bucketed program can
  serve any request whose dims fit inside it) and parses round-trip
  from its spec string,
* :class:`SpecializationKey` digests separate template identity from
  bucket identity: two bindings of one template share a template digest
  but never a bucket digest,
* workload ``with_dims`` re-instantiates at the new extents (the MPC
  matrices and FFT signal follow the dims) and ``validate_dims`` /
  ``validate_dim_names`` split raw-name checks from structural
  constraints so bucket rounding can happen in between.
"""

from __future__ import annotations

import pytest

from repro.errors import ShapeError
from repro.srdfg.shapes import BucketPolicy, ShapeBinding, SpecializationKey
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# ShapeBinding
# ---------------------------------------------------------------------------


def test_binding_is_canonical_and_hashable():
    a = ShapeBinding({"n": 8, "m": 3})
    b = ShapeBinding(m=3, n=8)
    assert a == b
    assert hash(a) == hash(b)
    assert a.key() == (("m", 3), ("n", 8))
    assert a.names() == ("m", "n")
    assert a.as_dict() == {"m": 3, "n": 8}
    assert a["n"] == 8 and a.get("q") is None
    assert "m" in a and "q" not in a
    assert len(a) == 2 and list(a) == ["m", "n"]
    assert a.describe() == "m=3 n=8"
    assert a.fingerprint() == b.fingerprint()


def test_binding_is_immutable_and_merge_derives():
    binding = ShapeBinding(n=4)
    with pytest.raises(AttributeError):
        binding._dims = ()
    merged = binding.merge({"n": 16}, m=2)
    assert merged == ShapeBinding(n=16, m=2)
    assert binding == ShapeBinding(n=4)  # original untouched
    assert not ShapeBinding()
    assert binding


@pytest.mark.parametrize("bad", [0, -3, 2.5, "8", True])
def test_binding_rejects_bad_extents(bad):
    with pytest.raises(ShapeError) as info:
        ShapeBinding(n=bad)
    assert info.value.name == "n"


# ---------------------------------------------------------------------------
# BucketPolicy
# ---------------------------------------------------------------------------


def test_policy_parse_round_trips():
    for spec in ("exact", "pow2", "multiple:16"):
        policy = BucketPolicy.parse(spec)
        assert policy.describe() == spec
        assert BucketPolicy.parse(policy) is policy
    assert BucketPolicy.parse(None) == BucketPolicy("exact")
    with pytest.raises(ShapeError):
        BucketPolicy.parse("fibonacci")
    with pytest.raises(ShapeError):
        BucketPolicy.parse("multiple:x")
    with pytest.raises(ShapeError):
        BucketPolicy("multiple", 0)


@pytest.mark.parametrize(
    ("spec", "value", "expected"),
    [
        ("exact", 1000, 1000),
        ("pow2", 1, 1),
        ("pow2", 2, 2),
        ("pow2", 1000, 1024),
        ("pow2", 1024, 1024),
        ("pow2", 1025, 2048),
        ("multiple:16", 1, 16),
        ("multiple:16", 16, 16),
        ("multiple:16", 17, 32),
    ],
)
def test_policy_rounds_up_never_down(spec, value, expected):
    assert BucketPolicy.parse(spec).round_dim(value) == expected
    assert expected >= value


def test_policy_buckets_bindings():
    binding = ShapeBinding(n=1000, m=5)
    assert BucketPolicy.parse("exact").bucket(binding) is binding
    assert BucketPolicy.parse("pow2").bucket(binding) == ShapeBinding(
        n=1024, m=8
    )
    assert BucketPolicy.parse("multiple:6").bucket(binding) == ShapeBinding(
        n=1002, m=6
    )


# ---------------------------------------------------------------------------
# SpecializationKey
# ---------------------------------------------------------------------------


def test_specialization_digests_split_template_from_bucket():
    small = SpecializationKey("FFT", ShapeBinding(n=1024), ("f64",))
    large = SpecializationKey("FFT", ShapeBinding(n=2048), ("f64",))
    other = SpecializationKey("DCT", ShapeBinding(n=1024), ("f64",))
    f32 = SpecializationKey("FFT", ShapeBinding(n=1024), ("f32",))

    # Same template, different buckets.
    assert small.template_digest() == large.template_digest()
    assert small.bucket_digest() != large.bucket_digest()
    # Different template, same binding.
    assert small.template_digest() != other.template_digest()
    # Same binding, different plan config -> different bucket.
    assert small.bucket_digest() != f32.bucket_digest()

    digests = {key.digest() for key in (small, large, other, f32)}
    assert len(digests) == 4
    assert small == SpecializationKey("FFT", ShapeBinding(n=1024), ("f64",))
    assert small != large and hash(small) != hash(large)
    assert small.describe() == "FFT [n=1024]"


def test_specialization_requires_a_binding():
    with pytest.raises(ShapeError):
        SpecializationKey("FFT", {"n": 1024})


# ---------------------------------------------------------------------------
# ShapeError payload
# ---------------------------------------------------------------------------


def test_shape_error_mismatch_carries_expected_and_got():
    error = ShapeError.mismatch("x0", (3, 30), (4, 30), kind="state")
    assert error.name == "x0"
    assert error.expected == (3, 30)
    assert error.got == (4, 30)
    assert "(3, 30)" in str(error) and "(4, 30)" in str(error)
    assert "state" in str(error)


# ---------------------------------------------------------------------------
# Workload dims: with_dims / validate split
# ---------------------------------------------------------------------------


def test_with_dims_reinstantiates_at_new_extents():
    base = get_workload("FFT-8192")
    small = base.with_dims(n=1024)
    assert base.dims() == {"n": 8192}
    assert small.dims() == {"n": 1024}
    assert small.shape_binding() == ShapeBinding(n=1024)
    # The derived input signal follows the dims.
    assert len(small.inputs(0, None)["sig"]) == 1024
    assert base.with_dims() is base


def test_validate_dim_names_vs_validate_dims():
    fft = get_workload("FFT-8192")
    # Raw-name check passes for any positive extent of a declared dim...
    type(fft).validate_dim_names({"n": 1000})
    # ...while the structural check rejects a non-power-of-two,
    with pytest.raises(ShapeError):
        type(fft).validate_dims({"n": 1000})
    # and both reject undeclared names, listing what is declared.
    with pytest.raises(ShapeError) as info:
        type(fft).validate_dim_names({"batch": 4})
    assert "batch" in str(info.value) and "n" in str(info.value)


def test_validate_values_reports_expected_vs_got():
    import numpy as np

    robot = get_workload("MobileRobot")
    good = robot.initial_state()
    robot.validate_values(dict(good), modifier="state")

    name, value = next(iter(good.items()))
    bad = dict(good)
    bad[name] = np.zeros(np.asarray(value).shape + (2,))
    with pytest.raises(ShapeError) as info:
        robot.validate_values(bad, modifier="state")
    assert info.value.name == name
    assert info.value.expected == tuple(np.asarray(value).shape)

    with pytest.raises(ShapeError):
        robot.validate_values({"no_such_tensor": np.zeros(3)}, modifier="state")
