"""Tests for the extension workloads (PageRank, LogisticRegression)."""

import numpy as np
import pytest

from repro.eval import Harness
from repro.workloads import EXTENSIONS, get_workload


class TestRegistration:
    def test_extensions_registered(self):
        for name in EXTENSIONS:
            assert get_workload(name) is not None

    def test_extensions_not_in_paper_tables(self):
        from repro.workloads import END_TO_END, SINGLE_DOMAIN

        assert not set(EXTENSIONS) & set(SINGLE_DOMAIN)
        assert not set(EXTENSIONS) & set(END_TO_END)


class TestPageRank:
    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("PageRank")

    def test_matches_reference(self, workload):
        check = workload.check_functional()
        assert check.ok, check.error

    def test_ranks_form_a_leaky_distribution(self, workload):
        results = workload.run_functional(steps=20)
        rank = results[-1].state["rank"]
        assert np.all(rank > 0)
        # Dangling vertices leak mass, so the sum is at most 1.
        assert rank.sum() <= 1.0 + 1e-9

    def test_high_in_degree_vertices_rank_higher(self, workload):
        results = workload.run_functional(steps=20)
        rank = results[-1].state["rank"]
        in_degree = workload.graph_data.adjacency.sum(axis=0)
        top = np.argsort(rank)[-10:]
        bottom = np.argsort(rank)[:10]
        assert in_degree[top].mean() > in_degree[bottom].mean()

    def test_converges(self, workload):
        results = workload.run_functional(steps=40)
        last = results[-1].state["rank"]
        prev = results[-2].state["rank"]
        assert np.max(np.abs(last - prev)) < 1e-6

    def test_compiles_to_graphicionado_pipeline(self, workload):
        harness = Harness()
        _, app, _ = harness.compiled("PageRank")
        assert "pipeline" in app.programs["GA"].ops()


class TestLogisticRegression:
    @pytest.fixture(scope="class")
    def workload(self):
        return get_workload("LogisticRegression")

    def test_matches_reference(self, workload):
        check = workload.check_functional()
        assert check.ok, check.error

    def test_training_improves_accuracy(self, workload):
        initial = workload.accuracy(workload.w0)
        results = workload.run_functional(steps=60)
        trained = workload.accuracy(results[-1].state["w"])
        assert trained > max(initial, 0.6)

    def test_loss_monotone_under_small_lr(self, workload):
        results = workload.run_functional(steps=6)
        losses = [float(result.outputs["loss"]) for result in results]
        assert losses[-1] < losses[0]

    def test_lowers_to_tabla_scalar_dfg(self, workload):
        harness = Harness()
        _, app, _ = harness.compiled("LogisticRegression")
        ops = app.programs["DA"].ops()
        assert any(op.startswith("scalar_dfg[") for op in ops)

    def test_accelerated_beats_cpu(self):
        run = Harness().run("LogisticRegression")
        assert run.runtime_vs_cpu > 1.0
        assert run.energy_vs_cpu > 1.0
