"""Suite for the ArtifactCache shape-bucket tier and specialized planning.

The contracts under test:

* the bucket tier keys plans as ``template digest -> bucket digest``:
  distinct bindings (or plan configs) of one template never collide,
  and distinct templates never share a group,
* evicting one bucket leaves sibling buckets of the same template
  untouched, and emptying a template removes it from the summary,
* every bucket operation is counted (``bucket_hits`` / ``bucket_misses``
  / ``bucket_stores`` / ``bucket_evictions``) and surfaced by
  ``CacheStats.render``,
* ``CompilerSession.plan_for(..., specialization=)`` builds one plan
  per bucket — a repeat lookup is a bucket hit that skips planning
  entirely (PLAN_STATS counter-asserted, not timing-based) — and plans
  for different dims of one workload are genuinely different programs.
"""

from __future__ import annotations

import pytest

from repro.driver import CompilerSession
from repro.driver.cache import ArtifactCache
from repro.srdfg.plan import PLAN_STATS
from repro.srdfg.shapes import ShapeBinding, SpecializationKey
from repro.targets import default_accelerators
from repro.workloads import get_workload


# ---------------------------------------------------------------------------
# Bucket tier: keying, eviction, counters.
# ---------------------------------------------------------------------------


def _spec(template, **dims):
    return SpecializationKey(template, ShapeBinding(dims), ("f64",))


def test_bucket_tier_keys_do_not_collide():
    cache = ArtifactCache()
    keys = [
        _spec("FFT", n=1024),
        _spec("FFT", n=2048),
        SpecializationKey("FFT", ShapeBinding(n=1024), ("f32",)),
        _spec("DCT", n=1024),
    ]
    for index, key in enumerate(keys):
        cache.bucket_put(key.template_digest(), key.bucket_digest(), index)

    # Every (template, binding, config) triple reads back its own plan.
    for index, key in enumerate(keys):
        assert cache.bucket_get(
            key.template_digest(), key.bucket_digest()
        ) == index

    # Two templates, three buckets under FFT and one under DCT.
    assert cache.bucket_count() == 4
    assert cache.bucket_count(keys[0].template_digest()) == 3
    assert cache.bucket_count(keys[3].template_digest()) == 1
    assert sorted(cache.bucket_summary().values()) == [1, 3]


def test_bucket_eviction_is_sibling_safe():
    cache = ArtifactCache()
    small, large = _spec("FFT", n=1024), _spec("FFT", n=2048)
    template = small.template_digest()
    cache.bucket_put(template, small.bucket_digest(), "small-plan")
    cache.bucket_put(template, large.bucket_digest(), "large-plan")

    assert cache.evict_bucket(template, small.bucket_digest())
    # The sibling bucket survives the eviction.
    assert cache.bucket_get(template, large.bucket_digest()) == "large-plan"
    assert cache.bucket_get(template, small.bucket_digest()) is None
    assert cache.buckets_for(template) == (large.bucket_digest(),)

    # Re-evicting is a no-op; emptying the template removes its group.
    assert not cache.evict_bucket(template, small.bucket_digest())
    assert cache.evict_bucket(template, large.bucket_digest())
    assert cache.bucket_summary() == {}
    assert cache.stats.bucket_evictions == 2


def test_bucket_counters_and_render():
    cache = ArtifactCache()
    key = _spec("FFT", n=1024)
    template, bucket = key.template_digest(), key.bucket_digest()

    assert cache.bucket_get(template, bucket) is None
    cache.bucket_put(template, bucket, "plan")
    assert cache.bucket_get(template, bucket) == "plan"

    stats = cache.stats
    assert stats.bucket_misses == 1
    assert stats.bucket_hits == 1
    assert stats.bucket_stores == 1
    assert "buckets: 1 hit(s) / 1 miss(es), 1 store(s)" in stats.render()

    cache.clear()
    assert cache.bucket_count() == 0


# ---------------------------------------------------------------------------
# Specialized planning through a CompilerSession.
# ---------------------------------------------------------------------------


@pytest.fixture()
def session():
    return CompilerSession(default_accelerators())


def _compile(session, workload):
    return session.compile(
        workload.source(),
        domain=workload.domain,
        data_hints=workload.hints(),
    )


def test_one_plan_per_bucket_counter_asserted(session):
    fft = get_workload("FFT-8192")
    small = fft.with_dims(n=1024)
    large = fft.with_dims(n=2048)

    baseline = PLAN_STATS.snapshot().graphs_planned

    def planned():
        return PLAN_STATS.snapshot().graphs_planned - baseline

    spec_small = SpecializationKey(
        "FFT-8192", small.shape_binding(), ("f64",)
    )
    plan_small = session.plan_for(
        _compile(session, small), specialization=spec_small
    )
    assert planned() == 1

    # Identical specialization: bucket hit, no new plan built — even for
    # a freshly recompiled (structurally identical) app.
    again = session.plan_for(
        _compile(session, small), specialization=spec_small
    )
    assert again is plan_small
    assert planned() == 1

    # A different binding of the same template is its own bucket.
    spec_large = SpecializationKey(
        "FFT-8192", large.shape_binding(), ("f64",)
    )
    plan_large = session.plan_for(
        _compile(session, large), specialization=spec_large
    )
    assert plan_large is not plan_small
    assert planned() == 2

    cache = session.cache
    template = spec_small.template_digest()
    assert cache.bucket_count(template) == 2
    assert set(cache.buckets_for(template)) == {
        spec_small.bucket_digest(),
        spec_large.bucket_digest(),
    }
    assert cache.stats.bucket_stores == 2
    assert cache.stats.bucket_hits == 1


def test_specialized_plans_execute_at_their_dims(session):
    fft = get_workload("FFT-8192")
    for size in (1024, 2048):
        workload = fft.with_dims(n=size)
        spec = SpecializationKey(
            "FFT-8192", workload.shape_binding(), ("f64",)
        )
        plan = session.plan_for(
            _compile(session, workload), specialization=spec
        )
        result = plan.execute(
            workload.inputs(0, None),
            params=workload.params(),
            state=workload.initial_state(),
        )
        values = result.outputs if hasattr(result, "outputs") else result
        lengths = {len(value) for value in values.values()}
        assert lengths == {size}


def test_bucket_eviction_forces_rebuild(session):
    fft = get_workload("FFT-8192").with_dims(n=1024)
    spec = SpecializationKey("FFT-8192", fft.shape_binding(), ("f64",))
    app = _compile(session, fft)
    session.plan_for(app, specialization=spec)

    assert session.cache.evict_bucket(
        spec.template_digest(), spec.bucket_digest()
    )
    baseline = PLAN_STATS.snapshot().graphs_planned
    session.plan_for(_compile(session, fft), specialization=spec)
    # The structural plan tier may still satisfy the rebuild without
    # re-planning, but the bucket must be re-filed either way.
    assert session.cache.bucket_count(spec.template_digest()) == 1
    assert PLAN_STATS.snapshot().graphs_planned - baseline <= 1


def test_server_bucket_policy_rounds_requests():
    from repro.serve import Server

    with Server(workers=1, bucket_policy="pow2") as server:
        workload, spec = server._resolve("FFT-8192", dims={"n": 1000})
    assert workload.dims() == {"n": 1024}
    assert spec.binding == ShapeBinding(n=1024)

    with Server(workers=1, bucket_policy="multiple:512") as server:
        workload, spec = server._resolve("DCT-1024", dims={"size": 1000})
    assert spec.binding == ShapeBinding(size=1024)
