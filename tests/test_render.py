"""Tests for the PMLang renderer (AST -> source) and graph decompiler."""

import numpy as np
import pytest

from repro.pmlang.parser import parse
from repro.pmlang.render import (
    decompile_graph,
    render_expr,
    render_program,
    render_stmt,
)
from repro.srdfg import Executor, build
from repro.passes import lower


class TestExprRendering:
    def component_expr(self, text):
        source = (
            "main(input float a, input float b, input float c,"
            f" output float y) {{ y = {text}; }}"
        )
        return parse(source).components["main"].body[0].value

    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "a - b - c",
            "a - (b - c)",
            "a / b / c",
            "a < b ? a : b",
            "-a * b",
            "a ^ 2",
            "sigmoid(a + b)",
            "fmax(a, b) + c",
        ],
    )
    def test_round_trip_preserves_semantics(self, text):
        original = self.component_expr(text)
        rendered = render_expr(original)
        reparsed = self.component_expr(rendered)
        # Compare by rendering again: fixed point after one pass.
        assert render_expr(reparsed) == rendered

    def test_left_associativity_preserved(self):
        # a - (b - c) must keep its parentheses.
        expr = self.component_expr("a - (b - c)")
        assert render_expr(expr) == "a - (b - c)"
        flat = self.component_expr("a - b - c")
        assert render_expr(flat) == "a - b - c"

    def test_reduction_with_predicate(self):
        source = (
            "main(input float A[3][3], output float r) {"
            " index i[0:2], j[0:2]; r = sum[i][j: j != i](A[i][j]); }"
        )
        stmt = parse(source).components["main"].body[1]
        assert render_stmt(stmt).strip() == "r = sum[i][j: j != i](A[i][j]);"


class TestProgramRoundTrip:
    def test_mpc_round_trips_functionally(self, mpc_source, mpc_data,
                                          mpc_reference_result):
        program = parse(mpc_source)
        rendered = render_program(program)
        graph = build(rendered, domain="RBT")
        result = Executor(graph).run(**mpc_data)
        assert np.allclose(
            result.outputs["ctrl_sgnl"], mpc_reference_result["ctrl_sgnl"]
        )
        assert np.allclose(
            result.state["ctrl_mdl"], mpc_reference_result["ctrl_mdl"]
        )

    def test_rendered_source_is_fixed_point(self, mpc_source):
        once = render_program(parse(mpc_source))
        twice = render_program(parse(once))
        assert once == twice

    def test_unroll_and_reduction_round_trip(self):
        source = (
            "reduction rmin(a,b) = a < b ? a : b;\n"
            "main(input float x[8], output float y[8], output float r) {\n"
            "  index i[0:7];\n"
            "  y[i] = x[i];\n"
            "  unroll s[1:2] { y[i] = y[i] * s; }\n"
            "  r = rmin[i](y[i]);\n"
            "}"
        )
        rendered = render_program(parse(source))
        rng = np.random.default_rng(1)
        x = rng.normal(size=8)
        a = Executor(build(source)).run(inputs={"x": x})
        b = Executor(build(rendered)).run(inputs={"x": x})
        assert np.allclose(a.outputs["y"], b.outputs["y"])
        assert np.allclose(a.outputs["r"], b.outputs["r"])

    def test_workload_sources_round_trip(self):
        # Every Table III source survives parse -> render -> parse.
        from repro.workloads import get_workload

        for name in ("MobileRobot", "Twitter-BFS", "FFT-8192", "DCT-1024"):
            workload = get_workload(name)
            rendered = render_program(parse(workload.source()))
            assert render_program(parse(rendered)) == rendered, name


class TestDecompile:
    def test_flat_graph_decompiles_and_rebuilds(self, mpc_source, mpc_data,
                                                mpc_reference_result):
        graph = build(mpc_source, domain="RBT")
        lower(graph, {"RBT": set()},
              {"RBT": {"alu", "mul", "div", "nonlinear"}})
        # Decompilation of a lowered graph is readable PMLang...
        source = decompile_graph(graph)
        assert "index" in source and "sum[" in source
        # ...but inlined formals may collide, so we only require the text
        # to show every boundary variable.
        for name in ("pos", "ctrl_mdl", "ctrl_sgnl", "P", "HQ_g"):
            assert name in source
