"""Unit tests for accelerator backends and Algorithm 2."""

import numpy as np
import pytest

from repro.errors import TargetError
from repro.srdfg import build
from repro.targets import (
    AcceleratorSpec,
    Deco,
    Graphicionado,
    HyperStreams,
    PolyMath,
    Robox,
    Tabla,
    Vta,
    compile_to_targets,
    default_accelerators,
    make_accelerator,
)
from repro.targets.compiler import retag_component_domain

ALL_BACKENDS = [Robox, Graphicionado, Tabla, Deco, Vta, HyperStreams]


class TestRegistry:
    def test_default_map_covers_five_domains(self):
        accelerators = default_accelerators()
        assert set(accelerators) == {"RBT", "GA", "DA", "DSP", "DL"}

    def test_override(self):
        accelerators = default_accelerators({"DA": "hyperstreams"})
        assert isinstance(accelerators["DA"], HyperStreams)

    def test_unknown_name_rejected(self):
        with pytest.raises(TargetError):
            make_accelerator("tpu")

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backends_instantiate(self, backend):
        accelerator = backend()
        assert accelerator.om_entry()
        assert accelerator.params.frequency_hz > 0
        assert accelerator.params.power_w > 0


class TestTranslation:
    def test_matvec_fragment_fields(self, matvec_source):
        accelerator = Robox()
        compiler = PolyMath({"RBT": accelerator}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="RBT")
        ops = app.programs["RBT"].ops()
        assert "matvec" in ops
        fragment = next(
            f for f in app.programs["RBT"].fragments if f.op == "matvec"
        )
        assert fragment.attrs["op_counts"]["mul"] == 12
        assert fragment.attrs["free_size"] == 4

    def test_scalar_lowered_fragment_named(self, matvec_source):
        accelerator = Tabla()
        compiler = PolyMath({"DA": accelerator}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="DA")
        ops = app.programs["DA"].ops()
        assert any(op.startswith("scalar_dfg[") for op in ops)

    def test_var_fragments(self, matvec_source):
        accelerator = Robox()
        compiler = PolyMath({"RBT": accelerator}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="RBT")
        ops = app.programs["RBT"].ops()
        assert ops.count("read_fifo") == 2
        assert ops.count("write_fifo") == 1

    def test_program_listing_renders(self, matvec_source):
        compiler = PolyMath({"RBT": Robox()}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="RBT")
        listing = app.programs["RBT"].listing()
        assert "matvec" in listing


class TestGraphicionadoPipeline:
    SOURCE = (
        "main(param bin adj[64][64], state float dist[64],"
        " output float next[64]) {"
        " index u[0:63], v[0:63];"
        " float relax[64];"
        " relax[v] = min[u: adj[u][v] == 1](dist[u] + 1.0);"
        " next[v] = fmin(relax[v], dist[v]);"
        " dist[v] = fmin(relax[v], dist[v]); }"
    )

    def test_vertex_reduce_becomes_pipeline(self):
        accelerator = Graphicionado()
        compiler = PolyMath({"GA": accelerator}, run_pipeline=False)
        app = compiler.compile(self.SOURCE, domain="GA")
        pipeline = next(
            f for f in app.programs["GA"].fragments if f.op == "pipeline"
        )
        assert pipeline.attrs["stages"][0] == "process_edge"
        assert pipeline.attrs["predicate"]

    def test_hints_reduce_pipeline_cost(self):
        dense = Graphicionado()
        sparse = Graphicionado(data_hints={"vertices": 64, "edges": 128})
        compiler = PolyMath({"GA": dense}, run_pipeline=False)
        app = compiler.compile(self.SOURCE, domain="GA")
        pipeline = next(
            f for f in app.programs["GA"].fragments if f.op == "pipeline"
        )
        assert sparse.fragment_cost(pipeline).seconds < dense.fragment_cost(
            pipeline
        ).seconds


class TestCosts:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_estimate_positive(self, backend, matvec_source):
        accelerator = backend()
        domain = accelerator.domain
        compiler = PolyMath({domain: accelerator}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain=domain)
        stats = accelerator.estimate(app.programs[domain])
        assert stats.seconds > 0
        assert stats.energy_j > 0

    def test_vta_tile_underfill_penalty(self):
        accelerator = Vta()
        small = (
            "main(input float A[4][4], input float x[4], output float y[4]) {"
            " index i[0:3], j[0:3]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        big = (
            "main(input float A[64][64], input float x[64], output float y[64]) {"
            " index i[0:63], j[0:63]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        costs = {}
        for tag, source in (("small", small), ("big", big)):
            compiler = PolyMath({"DL": accelerator}, run_pipeline=False)
            app = compiler.compile(source, domain="DL")
            fragment = next(
                f for f in app.programs["DL"].fragments if f.op == "matvec"
            )
            costs[tag] = accelerator.fragment_cost(fragment)
        assert "tile_underfill" in costs["small"].breakdown
        # The penalty is a slowdown factor, not absolute time: per-op time
        # must be worse for the underfilled small matvec.
        small_ops = costs["small"].op_count
        big_ops = costs["big"].op_count
        assert (costs["small"].seconds / small_ops) > (
            costs["big"].seconds / big_ops
        )

    def test_deco_matrix_penalty(self, matvec_source):
        accelerator = Deco()
        compiler = PolyMath({"DSP": accelerator}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="DSP")
        fragment = next(
            f for f in app.programs["DSP"].fragments if f.op == "matvec"
        )
        assert "rebalance" in accelerator.fragment_cost(fragment).breakdown

    def test_op_scale_hint_scales_cost(self, matvec_source):
        dense = Robox()
        sparse = Robox(data_hints={"op_scale": 0.01})
        compiler = PolyMath({"RBT": dense}, run_pipeline=False)
        app = compiler.compile(matvec_source, domain="RBT")
        fragment = next(
            f for f in app.programs["RBT"].fragments if f.op == "matvec"
        )
        assert sparse.fragment_cost(fragment).op_count < dense.fragment_cost(
            fragment
        ).op_count


class TestAlgorithm2:
    CROSS_SOURCE = (
        "filt(input float x[8], output float y[8]) {"
        " index i[0:7]; y[i] = x[i] * 0.5; }\n"
        "classify(input float y[8], param float w[8], output float score) {"
        " index i[0:7]; score = sigmoid(sum[i](w[i]*y[i])); }\n"
        "main(input float x[8], param float w[8], output float score) {"
        " float y[8];"
        " DSP: filt(x, y);"
        " DA: classify(y, w, score); }"
    )

    def test_per_domain_programs(self):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(self.CROSS_SOURCE, domain="DSP")
        assert set(app.programs) >= {"DSP", "DA"}

    def test_load_store_at_domain_boundary(self):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(self.CROSS_SOURCE, domain="DSP")
        da_ops = app.programs["DA"].ops()
        assert "load" in da_ops  # y crosses DSP -> DA
        dsp_ops = app.programs["DSP"].ops()
        assert "store" in dsp_ops

    def test_missing_accelerator_raises(self):
        graph = build(self.CROSS_SOURCE, domain="DSP")
        from repro.passes.lowering import lower

        lower(graph, {"DSP": set(), "DA": set()},
              {"DSP": {"alu", "mul", "div", "nonlinear"},
               "DA": {"alu", "mul", "div", "nonlinear"}})
        with pytest.raises(TargetError, match="no accelerator"):
            compile_to_targets(graph, {"DSP": Deco()})

    def test_functional_run_through_compiled_app(self):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(self.CROSS_SOURCE, domain="DSP")
        x = np.arange(8.0)
        w = np.ones(8) * 0.1
        result, total, per_domain = app.run(
            inputs={"x": x}, params={"w": w}
        )
        expected = 1.0 / (1.0 + np.exp(-np.sum(0.5 * x * 0.1)))
        assert float(result.outputs["score"]) == pytest.approx(expected)
        assert total.seconds > 0
        assert set(per_domain) == set(app.programs)

    def test_communication_stats_cross_only(self):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(self.CROSS_SOURCE, domain="DSP")
        comm = app.communication_stats()
        assert comm.dram_bytes > 0

    def test_retag_component_domain(self):
        graph = build(self.CROSS_SOURCE, domain="DSP")
        retag_component_domain(graph, "classify", "DA-CUSTOM")
        node = next(
            n for n in graph.component_nodes() if n.name == "classify"
        )
        assert node.domain == "DA-CUSTOM"
        assert all(sub.domain == "DA-CUSTOM" for sub in node.subgraph.nodes)


class TestSimulationEquivalence:
    @pytest.mark.parametrize("backend", [Robox, Tabla, Deco, Vta, HyperStreams])
    def test_backend_simulation_matches_reference(self, backend, matvec_source):
        accelerator = backend()
        domain = accelerator.domain
        compiler = PolyMath({domain: accelerator})
        app = compiler.compile(matvec_source, domain=domain)
        rng = np.random.default_rng(7)
        a, x = rng.normal(size=(4, 3)), rng.normal(size=3)
        result, stats = accelerator.simulate(
            app.graph, app.programs[domain], inputs={"A": a, "x": x}
        )
        assert np.allclose(result.outputs["y"], a @ x)
        assert stats.seconds > 0


class TestCompilationFlexibility:
    """§IV-C: 'Each algorithm can be instantiated for a number of
    different mappings without changes to the high-level algorithm.'"""

    MATMUL = (
        "main(input float A[32][32], input float B[32][32],"
        " output float C[32][32]) {"
        " index i[0:31], j[0:31], k[0:31];"
        " C[i][j] = sum[k](A[i][k]*B[k][j]); }"
    )

    def test_same_source_different_granularities(self):
        # VTA keeps the matmul whole; TABLA lowers it to a scalar DFG.
        vta_app = PolyMath({"DL": Vta()}, run_pipeline=False).compile(
            self.MATMUL, domain="DL"
        )
        tabla_app = PolyMath({"DA": Tabla()}, run_pipeline=False).compile(
            self.MATMUL, domain="DA"
        )
        assert "matmul" in vta_app.programs["DL"].ops()
        assert "scalar_dfg[matmul]" in tabla_app.programs["DA"].ops()

    def test_both_mappings_compute_the_same_result(self):
        import numpy as np

        rng = np.random.default_rng(11)
        a, b = rng.normal(size=(32, 32)), rng.normal(size=(32, 32))
        results = []
        for domain, accelerator in (("DL", Vta()), ("DA", Tabla())):
            app = PolyMath({domain: accelerator}).compile(
                self.MATMUL, domain=domain
            )
            result, _ = accelerator.simulate(
                app.graph, app.programs[domain], inputs={"A": a, "B": b}
            )
            results.append(result.outputs["C"])
        assert np.allclose(results[0], results[1])
        assert np.allclose(results[0], a @ b)


class TestExtensibilityCustomReduction:
    """The paper's extensibility claim: a community-added accelerator can
    accept user-defined group reductions as native operations."""

    SOURCE = (
        "reduction minrelax(a,b) = a < b ? a : b;\n"
        "main(param bin adj[32][32], param float w[32][32],"
        " state float dist[32], output float nd[32]) {"
        " index u[0:31], v[0:31];"
        " float relax[32];"
        " relax[v] = minrelax[u: adj[u][v] == 1](dist[u] + w[u][v]);"
        " nd[v] = fmin(relax[v], dist[v]);"
        " dist[v] = fmin(relax[v], dist[v]); }"
    )

    class GraphPlus(Graphicionado):
        """Graphicionado extended with the custom reduction as native."""

        name = "graphicionado+"
        spec = AcceleratorSpec(
            supported_ops=Graphicionado.spec.supported_ops | {"reduce_minrelax"},
            scalar_classes=Graphicionado.spec.scalar_classes,
        )

    def test_custom_reduction_compiles_and_runs(self):
        accelerator = self.GraphPlus()
        compiler = PolyMath({"GA": accelerator})
        app = compiler.compile(self.SOURCE, domain="GA")
        # The custom reduction rides the vertex pipeline.
        assert "pipeline" in app.programs["GA"].ops()

        rng = np.random.default_rng(17)
        adjacency = (rng.random((32, 32)) < 0.2).astype(np.int8)
        np.fill_diagonal(adjacency, 0)
        weights = rng.uniform(1, 5, size=(32, 32)) * adjacency
        dist = np.full(32, 1e9)
        dist[0] = 0.0
        result, stats = accelerator.simulate(
            app.graph,
            app.programs["GA"],
            params={"adj": adjacency, "w": weights},
            state={"dist": dist},
        )
        expected = np.minimum(
            dist,
            np.where(adjacency > 0, dist[:, None] + weights, np.inf).min(axis=0),
        )
        assert np.allclose(result.outputs["nd"], expected)
        assert stats.seconds > 0
