"""Tests for the cycle-level TABLA scheduler."""

import pytest

from repro.srdfg import build, expand_scalar
from repro.targets.tabla_schedule import (
    Schedule,
    TablaScheduler,
    is_nonlinear,
    op_latency,
)


def scalar_graph(source):
    graph = build(source)
    [node] = graph.compute_nodes()
    return expand_scalar(node)


MATVEC = (
    "main(input float A[8][8], input float x[8], output float y[8]) {"
    " index i[0:7], j[0:7]; y[j] = sum[i](A[j][i]*x[i]); }"
)


class TestLatencies:
    def test_basic_latencies(self):
        assert op_latency("add") == 1
        assert op_latency("mul") == 1
        assert op_latency("div") == 4
        assert op_latency("sigmoid") == 4

    def test_custom_combine_latency(self):
        assert op_latency("combine[rmin]") == 1

    def test_nonlinear_detection(self):
        assert is_nonlinear("sigmoid")
        assert is_nonlinear("gaussian")
        assert not is_nonlinear("mul")
        assert not is_nonlinear("relu")  # ALU-class


class TestScheduleValidity:
    @pytest.fixture(scope="class")
    def schedule(self):
        return TablaScheduler(num_pes=8).schedule_graph(scalar_graph(MATVEC))

    def test_all_ops_scheduled(self, schedule):
        # 64 multiplies + 8x7 sum combines.
        assert len(schedule.ops) == 64 + 56

    def test_no_pe_oversubscription(self, schedule):
        for cycle, busy in enumerate(schedule.occupancy_profile()):
            assert busy <= schedule.num_pes, cycle

    def test_dependencies_respected(self):
        # A dependent chain y = sigmoid(a*b + c) must serialise.
        source = (
            "main(input float a, input float b, input float c,"
            " output float y) { y = sigmoid(a*b + c); }"
        )
        schedule = TablaScheduler(num_pes=64).schedule_graph(scalar_graph(source))
        by_name = {op.name: op for op in schedule.ops}
        assert by_name["mul"].end_cycle <= by_name["add"].start_cycle
        assert by_name["add"].end_cycle <= by_name["sigmoid"].start_cycle
        assert schedule.makespan == 1 + 1 + 4

    def test_makespan_meets_lower_bound(self, schedule):
        scheduler = TablaScheduler(num_pes=8)
        bound = scheduler.analytic_lower_bound(scalar_graph(MATVEC))
        assert schedule.makespan >= bound
        # List scheduling is within 2x of optimal (Graham's bound).
        assert schedule.makespan <= 2 * bound

    def test_more_pes_never_slower(self):
        graph_small = scalar_graph(MATVEC)
        graph_big = scalar_graph(MATVEC)
        small = TablaScheduler(num_pes=4, nonlinear_pes=2).schedule_graph(graph_small)
        big = TablaScheduler(num_pes=64).schedule_graph(graph_big)
        assert big.makespan <= small.makespan

    def test_nonlinear_ops_restricted(self):
        source = (
            "main(input float x[16], output float y[16]) {"
            " index i[0:15]; y[i] = sigmoid(x[i]); }"
        )
        schedule = TablaScheduler(num_pes=16, nonlinear_pes=2).schedule_graph(
            scalar_graph(source)
        )
        pes_used = {op.pe for op in schedule.ops if op.name == "sigmoid"}
        assert pes_used <= {0, 1}
        # 16 sigmoids on 2 lookup units at 4 cycles each: 32 cycles.
        assert schedule.makespan == 32

    def test_utilisation_bounded(self, schedule):
        assert 0.0 < schedule.utilisation <= 1.0

    def test_empty_graph(self):
        from repro.srdfg.graph import SrDFG

        schedule = TablaScheduler().schedule_graph(SrDFG("empty"))
        assert schedule.makespan == 0

    def test_nonlinear_pool_validation(self):
        with pytest.raises(ValueError):
            TablaScheduler(num_pes=4, nonlinear_pes=8)


class TestScheduleStatementApi:
    def test_schedules_compute_node_directly(self):
        graph = build(MATVEC)
        [node] = graph.compute_nodes()
        schedule = TablaScheduler(num_pes=16).schedule_statement(node)
        assert isinstance(schedule, Schedule)
        assert schedule.makespan > 0
        # Expansion attached the scalar level to the node (srDFG recursion).
        assert node.subgraph is not None
