"""Unit tests for the PMLang lexer."""

import pytest

from repro.errors import PMLangSyntaxError
from repro.pmlang.lexer import tokenize
from repro.pmlang.tokens import EOF, FLOAT, INT, KEYWORD, NAME, OP, STRING


def kinds(source):
    return [token.kind for token in tokenize(source)]


def texts(source):
    return [token.text for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == EOF

    def test_identifier(self):
        token = tokenize("ctrl_mdl")[0]
        assert token.kind == NAME
        assert token.text == "ctrl_mdl"

    def test_keywords_are_not_names(self):
        for word in ("input", "output", "state", "param", "index", "float",
                     "reduction", "unroll", "RBT", "GA", "DSP", "DA", "DL"):
            assert tokenize(word)[0].kind == KEYWORD, word

    def test_identifier_with_keyword_prefix_is_name(self):
        assert tokenize("inputs")[0].kind == NAME
        assert tokenize("indexer")[0].kind == NAME

    def test_underscore_leading_identifier(self):
        assert tokenize("_tmp1")[0].text == "_tmp1"


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind == INT
        assert token.text == "42"

    def test_float_with_point(self):
        assert tokenize("3.25")[0].kind == FLOAT

    def test_float_with_exponent(self):
        assert tokenize("1e-3")[0].kind == FLOAT
        assert tokenize("2.5E+4")[0].kind == FLOAT

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind == FLOAT
        assert token.text == ".5"

    def test_integer_followed_by_range_colon(self):
        assert texts("i[0:9]") == ["i", "[", "0", ":", "9", "]"]


class TestOperators:
    def test_multi_char_operators_are_single_tokens(self):
        for op in ("==", "!=", "<=", ">=", "&&", "||"):
            tokens = tokenize(f"a {op} b")
            assert tokens[1].kind == OP and tokens[1].text == op

    def test_adjacent_single_char_ops(self):
        assert texts("a[i+1]") == ["a", "[", "i", "+", "1", "]"]

    def test_ternary_punctuation(self):
        assert texts("a ? b : c") == ["a", "?", "b", ":", "c"]

    def test_caret_power(self):
        assert texts("2^s") == ["2", "^", "s"]


class TestCommentsAndStrings:
    def test_line_comment_is_skipped(self):
        assert texts("a // trailing comment\nb") == ["a", "b"]

    def test_comment_only_line(self):
        assert kinds("// nothing here") == [EOF]

    def test_string_literal(self):
        token = tokenize('"hello world"')[0]
        assert token.kind == STRING
        assert token.text == "hello world"

    def test_string_with_escaped_quote(self):
        assert tokenize(r'"say \"hi\""')[0].text == 'say "hi"'

    def test_unterminated_string_raises(self):
        with pytest.raises(PMLangSyntaxError):
            tokenize('"oops')

    def test_unterminated_string_at_newline_raises(self):
        with pytest.raises(PMLangSyntaxError):
            tokenize('"oops\nmore"')


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        with pytest.raises(PMLangSyntaxError) as excinfo:
            tokenize("a\n@b")
        assert excinfo.value.line == 2

    def test_unexpected_character(self):
        with pytest.raises(PMLangSyntaxError):
            tokenize("a $ b")
