"""Differential fuzzer tests: deterministic generation, validity by
construction, zero divergences on the healthy stack, and — the test that
justifies the harness — a deliberately sabotaged optimizer pass is
caught by the plan oracle and minimized to a tiny reproducer."""

import json

import numpy as np

from repro.driver import CompilerSession
from repro.fuzz import (
    GenConfig,
    OracleContext,
    generate_program,
    minimize_program,
    reproducer_size,
    run_fuzz,
    run_program,
    run_reference,
)
from repro.passes import PassManager
from repro.passes.base import Pass
from repro.pmlang.ast_nodes import BinOp
from repro.srdfg import build
from repro.targets import default_accelerators


class TestGenerator:
    def test_same_seed_renders_identical_source(self):
        for seed in (0, 7, 23):
            first = generate_program(seed)
            second = generate_program(seed)
            assert first.render() == second.render()
            assert first.steps == second.steps
            # The data draws are part of the contract too.
            for a, b in zip(
                (first.inputs(), first.params(), first.initial_state()),
                (second.inputs(), second.params(), second.initial_state()),
            ):
                assert set(a) == set(b)
                for name in a:
                    np.testing.assert_array_equal(a[name], b[name])

    def test_distinct_seeds_render_distinct_source(self):
        renders = {generate_program(seed).render() for seed in range(8)}
        assert len(renders) == 8

    def test_generated_programs_build_and_execute(self):
        # Valid by construction: every seed must parse, build, and run
        # through the reference interpreter with finite outputs.
        for seed in range(10):
            program = generate_program(seed)
            graph = build(program.render(), domain="DA")
            steps = run_reference(program, "f64", graph=graph)
            assert len(steps) == program.steps
            for outputs in steps:
                assert set(outputs) >= set(program.outputs())
                for name in program.outputs():
                    assert np.all(np.isfinite(outputs[name]))

    def test_gen_config_bounds_statement_budget(self):
        config = GenConfig(min_statements=2, max_statements=3, max_outputs=1)
        for seed in range(5):
            program = generate_program(seed, config)
            # Budget + at most one state update + one output copy.
            assert len(program.statements) <= 3 + 1 + 1


class TestHarness:
    def test_small_batch_has_zero_divergences(self):
        report = run_fuzz(
            programs=4, seed=0, campaigns="smoke", precisions=("f64",)
        )
        assert report.ok, report.render()
        assert report.failures == 0
        assert report.checks > 0
        assert len(report.matrix) == 4
        # The report is the artifact CI uploads: it must serialize.
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["summary"]["ok"] is True
        assert "zero divergences" in report.render()

    def test_fault_campaigns_sweep_and_record_availability(self):
        # Find a generated program with a cross-domain component call so
        # the fault sweep has more than one domain to strike.
        program = next(
            candidate
            for candidate in (generate_program(seed) for seed in range(20))
            if any(stmt.kind == "call" for stmt in candidate.statements)
        )
        results = run_program(
            program, precisions=("f64",), campaigns="all", oracles=("faults",)
        )
        assert results, "fault sweep produced no campaigns"
        failed = [r for r in results if not r.ok]
        assert not failed, [r.to_dict() for r in failed]
        campaigns = {r.campaign for r in results}
        assert "mixed" in campaigns
        assert len(campaigns) > 1
        assert any(r.availability is not None for r in results)


class _SabotagePass(Pass):
    """Deliberately miscompiling pass: flips the first ``+`` to ``-``.

    One flip per pipeline run (``run_recursive`` shares the instance
    across subgraphs), so every compile of the same source diverges the
    same way — exactly the kind of silent wrong-code bug the
    differential harness exists to catch.
    """

    name = "sabotage"

    def __init__(self):
        self.fired = False

    def _flip(self, expr):
        if not isinstance(expr, BinOp):
            return False
        if expr.op == "+":
            expr.op = "-"
            return True
        return self._flip(expr.left) or self._flip(expr.right)

    def run(self, graph):
        if self.fired:
            return graph
        for node in graph.compute_nodes():
            stmt = node.attrs.get("stmt")
            if stmt is not None and self._flip(stmt.value):
                self.fired = True
                break
        return graph


class TestSabotage:
    def test_injected_bug_is_caught_and_minimized(self):
        sabotaged = CompilerSession(
            default_accelerators(),
            pipeline_factory=lambda: PassManager([_SabotagePass()]),
        )
        context = OracleContext(rules=sabotaged)
        report = run_fuzz(
            programs=4,
            seed=0,
            campaigns="none",
            precisions=("f64",),
            oracles=("plan",),
            minimize=True,
            context=context,
        )
        assert report.failures > 0, (
            "sabotaged pipeline produced no divergence — the harness is blind"
        )
        assert all(d.oracle == "plan" for d in report.divergences)
        minimized = [
            d for d in report.divergences if d.minimized_nodes is not None
        ]
        assert minimized, "no divergence was minimized"
        # The acceptance bar: at least one reproducer shrinks to <= 5
        # top-level nodes (typically the offending statement plus its
        # output witness), and none stays anywhere near full size.
        assert min(d.minimized_nodes for d in minimized) <= 5
        for divergence in minimized:
            assert divergence.minimized_nodes <= 8
            assert divergence.minimized_source
            assert len(divergence.minimized_source) <= len(divergence.source)
        rendered = report.render()
        assert "DIVERGENCE" in rendered
        assert "minimized to" in rendered

    def test_minimized_reproducer_still_diverges(self):
        sabotaged = CompilerSession(
            default_accelerators(),
            pipeline_factory=lambda: PassManager([_SabotagePass()]),
        )
        context = OracleContext(rules=sabotaged)

        def still_fails(candidate):
            results = run_program(
                candidate,
                context=context,
                precisions=("f64",),
                campaigns="none",
                oracles=("plan",),
            )
            return any(not r.ok for r in results)

        program = next(
            candidate
            for candidate in (generate_program(seed) for seed in range(10))
            if still_fails(candidate)
        )
        minimized = minimize_program(program, still_fails)
        assert len(minimized.statements) <= len(program.statements)
        # The minimizer's contract: whatever survives still witnesses
        # the divergence, and it is small enough to debug by eye.
        assert still_fails(minimized)
        assert reproducer_size(minimized) <= 8


class TestReproducerSize:
    def test_counts_top_level_compute_and_component_nodes(self):
        program = generate_program(0)
        size = reproducer_size(program)
        assert size >= 1
        # Dropping statements can only shrink the build.
        smaller = program.clone_with(program.live_statements())
        assert reproducer_size(smaller) <= size
