"""Property-based tests (hypothesis) for core invariants.

Four deep properties:

1. statement evaluation equals a naive per-lattice-point loop interpreter
   for randomly generated formula statements;
2. constant folding preserves the value of random constant expressions;
3. the lexer/parser round-trips randomly rendered expressions;
4. pass pipelines preserve functional semantics on random elementwise
   pipelines of statements.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.pmlang import ast_nodes as ast
from repro.pmlang.parser import parse
from repro.passes.constant_folding import fold_expr
from repro.srdfg import Executor, build, evaluate_statement
from repro.srdfg.builder import eval_static

# ---------------------------------------------------------------------------
# 1. Statement evaluation vs naive loop reference
# ---------------------------------------------------------------------------

_SIZES = st.integers(min_value=1, max_value=5)


@st.composite
def random_statement(draw):
    """A random assignment over a 1-D/2-D lattice with strided reads."""
    n = draw(_SIZES)
    m = draw(_SIZES)
    # Choose a RHS template mixing reads, arithmetic, and reductions.
    template = draw(
        st.sampled_from(
            [
                "y[i] = a[i] + b[i] * c;",
                "y[i] = a[i] - 2.0 * b[i];",
                "y[i] = a[i] > b[i] ? a[i] : b[i];",
                "y[i] = sum[j](A[i][j] * b2[j]);",
                "y[i] = sum[j](A[i][j]) + a[i];",
                "y[i] = max[j](A[i][j]);",
                "y[i] = min[j: j != 0](A[i][j] + 1.0);",
                "r = sum[i][j](A[i][j]);",
                "y[i] = abs(a[i]) + sqrt(abs(b[i]));",
            ]
        )
    )
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    values = {
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "b2": rng.normal(size=m),
        "A": rng.normal(size=(n, m)),
        "c": np.asarray(1.5),
        "y": np.zeros(n),
        "r": np.zeros(()),
    }
    return template, n, m, values


def _naive_eval(template, n, m, values):
    """Brute-force per-point Python evaluation of the templates above."""
    a, b, b2, A, c = values["a"], values["b"], values["b2"], values["A"], 1.5
    if template == "y[i] = a[i] + b[i] * c;":
        return np.array([a[i] + b[i] * c for i in range(n)])
    if template == "y[i] = a[i] - 2.0 * b[i];":
        return np.array([a[i] - 2.0 * b[i] for i in range(n)])
    if template == "y[i] = a[i] > b[i] ? a[i] : b[i];":
        return np.array([a[i] if a[i] > b[i] else b[i] for i in range(n)])
    if template == "y[i] = sum[j](A[i][j] * b2[j]);":
        return np.array(
            [sum(A[i][j] * b2[j] for j in range(m)) for i in range(n)]
        )
    if template == "y[i] = sum[j](A[i][j]) + a[i];":
        return np.array([sum(A[i][j] for j in range(m)) + a[i] for i in range(n)])
    if template == "y[i] = max[j](A[i][j]);":
        return np.array([max(A[i][j] for j in range(m)) for i in range(n)])
    if template == "y[i] = min[j: j != 0](A[i][j] + 1.0);":
        return np.array(
            [
                min((A[i][j] + 1.0 for j in range(m) if j != 0), default=np.inf)
                for i in range(n)
            ]
        )
    if template == "r = sum[i][j](A[i][j]);":
        return np.asarray(sum(A[i][j] for i in range(n) for j in range(m)))
    if template == "y[i] = abs(a[i]) + sqrt(abs(b[i]));":
        return np.array([abs(a[i]) + np.sqrt(abs(b[i])) for i in range(n)])
    raise AssertionError(template)


@given(random_statement())
@settings(max_examples=60, deadline=None)
def test_statement_evaluation_matches_naive_loops(case):
    template, n, m, values = case
    program = parse(
        "main(input float a[N], input float b[N], input float b2[M],"
        " input float A[N][M], input float c,"
        " output float y[N], output float r) {"
        " index i[0:N-1], j[0:M-1];"
        f" {template} }}".replace("N", str(n)).replace("M", str(m))
    )
    stmt = program.components["main"].body[-1]
    result = evaluate_statement(
        stmt,
        {"i": (0, n - 1), "j": (0, m - 1)},
        {},
        values,
        lhs_shape=(n,) if stmt.target == "y" else (),
        dtype="float",
    )
    expected = _naive_eval(template, n, m, values)
    assert np.allclose(np.asarray(result).ravel(), np.asarray(expected).ravel())


# ---------------------------------------------------------------------------
# 2. Constant folding preserves static value
# ---------------------------------------------------------------------------

_const_expr = st.deferred(
    lambda: st.one_of(
        st.integers(min_value=-20, max_value=20).map(lambda v: ast.Literal(value=v)),
        st.tuples(
            st.sampled_from(["+", "-", "*"]), _const_expr, _const_expr
        ).map(lambda t: ast.BinOp(op=t[0], left=t[1], right=t[2])),
        st.tuples(_const_expr, _const_expr, _const_expr).map(
            lambda t: ast.Ternary(cond=t[0], then=t[1], other=t[2])
        ),
    )
)


@given(_const_expr)
@settings(max_examples=80, deadline=None)
def test_fold_expr_preserves_static_value(expr):
    folded = fold_expr(expr, {}, set())
    assert isinstance(folded, ast.Literal)
    assert folded.value == eval_static(expr, {})


# ---------------------------------------------------------------------------
# 3. Expression rendering round-trips through the parser
# ---------------------------------------------------------------------------


def _render(expr):
    if isinstance(expr, ast.Literal):
        return repr(expr.value)
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.BinOp):
        return f"({_render(expr.left)} {expr.op} {_render(expr.right)})"
    if isinstance(expr, ast.UnaryOp):
        return f"(-{_render(expr.operand)})" if expr.op == "-" else f"(!{_render(expr.operand)})"
    if isinstance(expr, ast.Ternary):
        return f"({_render(expr.cond)} ? {_render(expr.then)} : {_render(expr.other)})"
    raise AssertionError(type(expr))


_names = st.sampled_from(["x", "zed", "var_1"])

_rt_expr = st.deferred(
    lambda: st.one_of(
        st.integers(min_value=0, max_value=99).map(lambda v: ast.Literal(value=v)),
        _names.map(lambda n: ast.Name(id=n)),
        st.tuples(
            st.sampled_from(["+", "-", "*", "/", "<", ">", "==" ]), _rt_expr, _rt_expr
        ).map(lambda t: ast.BinOp(op=t[0], left=t[1], right=t[2])),
        _rt_expr.map(lambda e: ast.UnaryOp(op="-", operand=e)),
        st.tuples(_rt_expr, _rt_expr, _rt_expr).map(
            lambda t: ast.Ternary(cond=t[0], then=t[1], other=t[2])
        ),
    )
)


def _structurally_equal(left, right):
    if type(left) is not type(right):
        return False
    if isinstance(left, ast.Literal):
        return left.value == right.value
    if isinstance(left, ast.Name):
        return left.id == right.id
    if isinstance(left, ast.UnaryOp):
        return left.op == right.op and _structurally_equal(left.operand, right.operand)
    if isinstance(left, ast.BinOp):
        return (
            left.op == right.op
            and _structurally_equal(left.left, right.left)
            and _structurally_equal(left.right, right.right)
        )
    if isinstance(left, ast.Ternary):
        return all(
            _structurally_equal(getattr(left, field), getattr(right, field))
            for field in ("cond", "then", "other")
        )
    return False


@given(_rt_expr)
@settings(max_examples=80, deadline=None)
def test_expressions_round_trip_through_parser(expr):
    source = (
        "main(input float x, input float zed, input float var_1,"
        f" output float out) {{ out = {_render(expr)}; }}"
    )
    parsed = parse(source).components["main"].body[0].value
    assert _structurally_equal(parsed, expr)


# ---------------------------------------------------------------------------
# 4. Pass pipeline preserves semantics of random elementwise pipelines
# ---------------------------------------------------------------------------


@st.composite
def random_pipeline(draw):
    """A chain of elementwise statements threading locals."""
    depth = draw(st.integers(min_value=1, max_value=5))
    size = draw(st.integers(min_value=1, max_value=6))
    operators = [draw(st.sampled_from(["+", "-", "*"])) for _ in range(depth)]
    constants = [draw(st.integers(min_value=0, max_value=3)) for _ in range(depth)]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return depth, size, operators, constants, seed


@given(random_pipeline())
@settings(max_examples=40, deadline=None)
def test_default_pipeline_preserves_random_programs(case):
    from repro.passes import default_pipeline

    depth, size, operators, constants, seed = case
    lines = [f"  float t0[{size}];", f"  index i[0:{size - 1}];",
             "  t0[i] = x[i];"]
    previous = "t0"
    for level, (op, const) in enumerate(zip(operators, constants), start=1):
        name = f"t{level}"
        lines.insert(0, f"  float {name}[{size}];")
        lines.append(f"  {name}[i] = {previous}[i] {op} {const};")
        previous = name
    lines.append(f"  y[i] = {previous}[i];")
    source = (
        f"main(input float x[{size}], output float y[{size}]) {{\n"
        + "\n".join(lines)
        + "\n}"
    )
    rng = np.random.default_rng(seed)
    x = rng.normal(size=size)

    plain = Executor(build(source)).run(inputs={"x": x}).outputs["y"]
    optimised_graph = default_pipeline().run(build(source)).graph
    optimised = Executor(optimised_graph).run(inputs={"x": x}).outputs["y"]
    assert np.allclose(plain, optimised)

    expected = x.copy()
    for op, const in zip(operators, constants):
        if op == "+":
            expected = expected + const
        elif op == "-":
            expected = expected - const
        else:
            expected = expected * const
    assert np.allclose(plain, expected)


# ---------------------------------------------------------------------------
# 5. Analytic op counting agrees with scalar expansion
# ---------------------------------------------------------------------------


@st.composite
def countable_statement(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    m = draw(st.integers(min_value=1, max_value=4))
    template = draw(
        st.sampled_from(
            [
                "y[i] = a[i] + b[i];",
                "y[i] = a[i] * b[i] + 1.0;",
                "y[i] = sum[j](A[i][j]);",
                "y[i] = sum[j](A[i][j] * b2[j]);",
                "r = sum[i][j](A[i][j]);",
                "y[i] = sigmoid(a[i]);",
            ]
        )
    )
    return template, n, m


@given(countable_statement())
@settings(max_examples=50, deadline=None)
def test_opclass_counts_match_scalar_expansion(case):
    """The analytic scalar-op count (opclass) and the materialised scalar
    graph (expand) are independent implementations of the same quantity."""
    from repro.srdfg import build, expand_scalar
    from repro.srdfg.expand import scalar_op_histogram

    template, n, m = case
    source = (
        "main(input float a[N], input float b[N], input float b2[M],"
        " input float A[N][M], output float y[N], output float r) {"
        " index i[0:N-1], j[0:M-1];"
        f" {template} }}".replace("N", str(n)).replace("M", str(m))
    )
    graph = build(source)
    [node] = graph.compute_nodes()
    analytic = node.attrs["descriptor"].total_ops
    histogram = scalar_op_histogram(expand_scalar(node))
    materialised = sum(histogram.values())
    assert analytic == materialised, (template, n, m, histogram)


# ---------------------------------------------------------------------------
# 6. Lowering (component inlining) preserves semantics
# ---------------------------------------------------------------------------


@st.composite
def nested_program(draw):
    """A random two-level component program over a small vector."""
    size = draw(st.integers(min_value=1, max_value=6))
    inner_op = draw(st.sampled_from(["+", "*", "-"]))
    inner_const = draw(st.integers(min_value=1, max_value=4))
    outer_uses_state = draw(st.booleans())
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return size, inner_op, inner_const, outer_uses_state, seed


@given(nested_program())
@settings(max_examples=30, deadline=None)
def test_lowering_preserves_semantics_on_random_programs(case):
    from repro.passes.lowering import lower

    size, inner_op, inner_const, outer_uses_state, seed = case
    state_decl = "state float acc[N]," if outer_uses_state else ""
    state_stmt = "acc[i] = acc[i] + t[i];" if outer_uses_state else ""
    source = (
        f"inner(input float a[n], output float b[n]) {{"
        f" index i[0:n-1]; b[i] = a[i] {inner_op} {inner_const}; }}\n"
        f"main(input float x[N], {state_decl} output float y[N]) {{"
        f" index i[0:N-1];"
        f" float t[N];"
        f" inner(x, t);"
        f" {state_stmt}"
        f" y[i] = t[i] * 2.0; }}"
    ).replace("N", str(size))

    rng = np.random.default_rng(seed)
    x = rng.normal(size=size)
    state = {"acc": rng.normal(size=size)} if outer_uses_state else {}

    plain = Executor(build(source)).run(inputs={"x": x}, state=dict(state))
    lowered_graph = build(source)
    lower(lowered_graph, {"DA": set()}, {"DA": {"alu", "mul", "div", "nonlinear"}})
    lowered = Executor(lowered_graph).run(inputs={"x": x}, state=dict(state))

    assert np.allclose(plain.outputs["y"], lowered.outputs["y"])
    if outer_uses_state:
        assert np.allclose(plain.state["acc"], lowered.state["acc"])
