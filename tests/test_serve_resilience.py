"""Serving-layer resilience: deadlines, cancellation, circuit breakers,
bounded shutdown, client-side timeouts, and the conservation identity
(every submitted request lands in exactly one outcome bucket)."""

import threading
import time

import pytest

from repro.serve import (
    CancelledError,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    Request,
    RequestMetrics,
    Response,
    Scheduler,
    Server,
    Ticket,
    WorkerPool,
    replay,
    synth_trace,
)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard


class FakeClock:
    """Steppable monotonic clock so breaker tests never sleep."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def _open_breaker(self, breaker):
        for _ in range(breaker.threshold):
            breaker.record(ok=False)
        assert breaker.state == OPEN

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)

    def test_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        breaker.record(ok=False)
        breaker.record(ok=False)
        assert breaker.state == CLOSED
        assert breaker.allow() == (True, 0.0)

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=3, clock=FakeClock())
        for _ in range(2):
            breaker.record(ok=False)
        breaker.record(ok=True)
        for _ in range(2):
            breaker.record(ok=False)
        assert breaker.state == CLOSED

    def test_opens_at_threshold_and_sheds_with_retry_after(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.5, clock=clock)
        self._open_breaker(breaker)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(0.5)
        clock.advance(0.2)
        allowed, retry_after = breaker.allow()
        assert not allowed
        assert retry_after == pytest.approx(0.3)
        assert breaker.counters()["rejected"] == 2
        assert breaker.counters()["opened"] == 1

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.5, clock=clock)
        self._open_breaker(breaker)
        clock.advance(0.6)
        assert breaker.state == HALF_OPEN
        assert breaker.allow() == (True, 0.0)  # the probe
        allowed, retry_after = breaker.allow()  # single-flight
        assert not allowed
        assert retry_after == pytest.approx(0.5)
        assert breaker.counters()["probes"] == 1

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.5, clock=clock)
        self._open_breaker(breaker)
        clock.advance(0.6)
        assert breaker.allow()[0]
        breaker.record(ok=True)
        assert breaker.state == CLOSED
        assert breaker.allow() == (True, 0.0)

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_s=0.5, clock=clock)
        for _ in range(3):
            breaker.record(ok=False)
        clock.advance(0.6)
        assert breaker.allow()[0]
        breaker.record(ok=False)  # probe failed: reopen immediately,
        assert breaker.state == OPEN  # even though 4 < a fresh threshold run
        assert breaker.counters()["opened"] == 2
        assert not breaker.allow()[0]

    def test_straggler_failure_does_not_restart_the_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.5, clock=clock)
        self._open_breaker(breaker)
        clock.advance(0.3)
        # A request admitted before the trip finishes late and fails.
        breaker.record(ok=False)
        clock.advance(0.25)  # 0.55 since the trip, 0.25 since straggler
        assert breaker.state == HALF_OPEN
        assert breaker.counters()["opened"] == 1


class TestBreakerBoard:
    def test_workloads_are_isolated(self):
        board = BreakerBoard(threshold=2, clock=FakeClock())
        board.record("bad", ok=False)
        board.record("bad", ok=False)
        allowed, retry_after = board.allow("bad")
        assert not allowed
        assert retry_after > 0
        assert board.allow("good") == (True, 0.0)
        snapshot = board.snapshot()
        assert snapshot["bad"]["state"] == OPEN
        assert "good" in snapshot and snapshot["good"]["state"] == CLOSED

    def test_threshold_zero_disables_the_board(self):
        board = BreakerBoard(threshold=0)
        assert not board.enabled
        for _ in range(10):
            board.record("w", ok=False)
        assert board.allow("w") == (True, 0.0)
        assert board.counters()["workloads"] == 0

    def test_flat_counters_aggregate_across_workloads(self):
        clock = FakeClock()
        board = BreakerBoard(threshold=1, cooldown_s=0.5, clock=clock)
        board.record("a", ok=False)
        board.record("b", ok=False)
        board.allow("a")
        counters = board.counters()
        assert counters["workloads"] == 2
        assert counters["open"] == 2
        assert counters["opened"] == 2
        assert counters["rejected"] == 1
        clock.advance(0.6)
        assert board.counters()["half_open"] == 2


class TestDeadlines:
    def test_spent_deadline_is_rejected_at_admission(self):
        server = Server(workers=1)
        for deadline in (0.0, -1.0):
            with pytest.raises(DeadlineExceededError):
                server.submit(
                    Request(workload="MobileRobot", deadline_s=deadline)
                )
        counters = server._serve_counters()
        assert counters["submitted"] == 2
        assert counters["expired"] == 2
        assert counters["outstanding"] == 0

    def test_queued_expiry_and_cancellation_never_execute(self):
        # Submit before starting the workers: both tickets sit in the
        # queue deterministically while we expire one and cancel the
        # other.
        server = Server(workers=1, queue_capacity=8)
        doomed = server.submit(
            Request(workload="MobileRobot", steps=1, deadline_s=0.02)
        )
        cancelled = server.submit(Request(workload="MobileRobot", steps=1))
        assert cancelled.cancel() is True
        time.sleep(0.05)  # let the deadline lapse in the queue
        with server:
            assert server.drain(timeout=30.0)

        expired_response = doomed.wait(timeout=5.0)
        assert not expired_response.ok
        assert expired_response.error_kind == "DeadlineExceededError"
        assert not expired_response.outputs  # never executed
        assert doomed.metrics.outcome == "expired"

        cancelled_response = cancelled.wait(timeout=5.0)
        assert cancelled_response.error_kind == "CancelledError"
        assert not cancelled_response.outputs
        assert cancelled.metrics.outcome == "cancelled"
        assert cancelled.cancel() is False  # too late: already answered

        report = server.report()
        assert report.expired == 1
        assert report.cancelled == 1
        assert report.completed == 0
        assert report.conservation_ok, report.to_dict()
        # Expiry and cancellation say nothing about workload health.
        assert report.breakers.get("MobileRobot", {}).get("opened", 0) == 0

    def test_deadline_checked_again_after_compile_and_plan(self):
        # Drive the worker body directly with a ticket whose deadline is
        # already spent: compile and plan run, execute must not.
        server = Server(workers=1)
        request = Request(workload="MobileRobot", steps=1, deadline_s=5.0)
        ticket = Ticket(
            request,
            RequestMetrics(
                request_id=request.request_id, workload=request.workload
            ),
        )
        ticket.deadline_at = time.perf_counter() - 1.0
        response = Response(request=request)
        with pytest.raises(DeadlineExceededError, match="refusing to execute"):
            server._serve_one(request, ticket.metrics, response, ticket)
        assert not response.outputs
        assert ticket.metrics.compile_seconds > 0  # compile did happen

    def test_cancellation_checked_again_after_compile_and_plan(self):
        server = Server(workers=1)
        request = Request(workload="MobileRobot", steps=1)
        ticket = Ticket(
            request,
            RequestMetrics(
                request_id=request.request_id, workload=request.workload
            ),
        )
        assert ticket.cancel()
        response = Response(request=request)
        with pytest.raises(CancelledError):
            server._serve_one(request, ticket.metrics, response, ticket)
        assert not response.outputs


class TestServerBreaker:
    def test_failing_workload_opens_the_breaker(self):
        server = Server(workers=1, breaker_threshold=2)
        with server:
            for _ in range(2):
                response = server.request(
                    Request(workload="no-such-workload"), timeout=30.0
                )
                assert not response.ok
            with pytest.raises(CircuitOpenError) as excinfo:
                server.submit(Request(workload="no-such-workload"))
            assert excinfo.value.retry_after > 0
            # Other workloads are untouched by the open breaker.
            healthy = server.request(
                Request(workload="MobileRobot"), timeout=60.0
            )
            assert healthy.ok
        report = server.report()
        assert report.failed == 2
        assert report.breaker_rejected == 1
        assert report.completed == 1
        assert report.conservation_ok, report.to_dict()
        assert report.breakers["no-such-workload"]["state"] == OPEN
        assert report.breakers["no-such-workload"]["opened"] == 1
        registry = server.metrics_registry()
        snapshot = registry.snapshot()
        assert snapshot["breaker.opened"] == 1
        assert snapshot["serve.breaker_rejected"] == 1

    def test_breaker_recloses_after_successful_probe(self):
        server = Server(
            workers=1, breaker_threshold=1, breaker_cooldown_s=0.05
        )
        with server:
            bad = server.request(
                Request(workload="no-such-workload"), timeout=30.0
            )
            assert not bad.ok
            breaker = server.breakers.breaker("no-such-workload")
            assert breaker.state == OPEN
            time.sleep(0.06)
            assert breaker.state == HALF_OPEN
            # The probe: feed it a success the way the server would.
            allowed, _ = server.breakers.allow("no-such-workload")
            assert allowed
            server.breakers.record("no-such-workload", ok=True)
            assert breaker.state == CLOSED


class TestWorkerPoolJoin:
    def test_join_timeout_is_shared_across_threads(self):
        scheduler = Scheduler(capacity=16)
        release = threading.Event()

        def handler(entry, worker_name):
            release.wait(10.0)

        pool = WorkerPool(scheduler, handler, workers=4).start()
        try:
            for _ in range(4):
                scheduler.submit(1, object())
            deadline = time.monotonic() + 5.0
            while pool.alive < 4 and time.monotonic() < deadline:
                time.sleep(0.01)
            scheduler.close()
            started = time.monotonic()
            assert pool.join(timeout=0.4) is False
            elapsed = time.monotonic() - started
            # Per-thread timeouts would block ~4 x 0.4 s; the shared
            # deadline returns in ~0.4 s.
            assert elapsed < 1.2, f"join took {elapsed:.2f}s"
        finally:
            release.set()
        assert pool.join(timeout=10.0) is True


class TestReplayResilience:
    def test_wait_timeout_is_counted_as_timed_out(self):
        # FFT-8192 models ~0.75 ms device seconds per step; x1000
        # emulation makes the execute phase sleep long enough that a
        # 50 ms client timeout always fires first.
        server = Server(workers=1, emulate_device=1000.0)
        with server:
            responses, _ = replay(
                server,
                [Request(workload="FFT-8192", steps=1)],
                timeout=0.05,
            )
        assert responses == [None]
        report = server.report()
        assert report.timed_out == 1
        assert report.completed == 0
        assert report.conservation_ok, report.to_dict()
        assert report.requests[0].outcome == "timed_out"

    def test_conservation_under_deadlines_faults_and_backpressure(self):
        trace = synth_trace(
            requests=12,
            seed=3,
            max_steps=2,
            deadline_s=60.0,
            fault_rate=0.4,
        )
        assert any(request.inject for request in trace)
        server = Server(workers=2, queue_capacity=4, breaker_threshold=3)
        with server:
            responses, retries = replay(server, trace)
        report = server.report()
        assert report.conservation_ok, report.to_dict()
        # Backpressure resubmissions are themselves submissions; each
        # rejected attempt occupies the `rejected` bucket.
        assert report.submitted == len(trace) + retries
        assert report.rejected == retries
        assert report.completed == len(trace)
        for response in responses:
            assert response is not None and response.ok
        assert "accounting ok" in report.render()

    def test_report_flags_conservation_violation(self):
        server = Server(workers=1)
        with server:
            assert server.request(
                Request(workload="MobileRobot"), timeout=60.0
            ).ok
        report = server.report()
        assert report.conservation_ok
        report.submitted += 1  # simulate a lost request
        assert not report.conservation_ok
        assert "VIOLATED" in report.render()
