"""Unit tests for PMLang semantic analysis."""

import pytest

from repro.errors import PMLangSemanticError
from repro.pmlang.parser import parse
from repro.pmlang.semantic import analyze


def check(source, entry="main"):
    return analyze(parse(source), entry=entry)


class TestEntryAndStructure:
    def test_requires_main(self):
        with pytest.raises(PMLangSemanticError, match="no 'main'"):
            check("f(input float x) { }")

    def test_entry_can_be_disabled(self):
        info = analyze(parse("f(input float x[2]) { }"), entry=None)
        assert "f" in info.components

    def test_symbols_include_args_and_dims(self, mpc_source):
        info = check(mpc_source)
        mvmul = info.components["mvmul"]
        assert mvmul.symbols["A"].kind == "arg"
        assert mvmul.symbols["m"].kind == "dim"
        assert mvmul.symbols["i"].kind == "index"

    def test_call_list_recorded(self, mpc_source):
        info = check(mpc_source)
        assert info.components["main"].calls == (
            "predict_trajectory",
            "compute_ctrl_grad",
            "update_ctrl_model",
        )


class TestNameRules:
    def test_undeclared_name_rejected(self):
        with pytest.raises(PMLangSemanticError, match="undeclared"):
            check("main(input float x[2]) { index i[0:1]; y[i] = x[i]; }")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(PMLangSemanticError, match="duplicate"):
            check("main(input float x[2]) { float x[2]; }")

    def test_duplicate_index_rejected(self):
        with pytest.raises(PMLangSemanticError, match="duplicate"):
            check("main(input float x[2]) { index i[0:1], i[0:1]; }")

    def test_write_to_input_rejected(self):
        with pytest.raises(PMLangSemanticError, match="cannot write"):
            check("main(input float x[2]) { index i[0:1]; x[i] = 1.0; }")

    def test_write_to_param_rejected(self):
        with pytest.raises(PMLangSemanticError, match="cannot write"):
            check("main(param float p[2], output float y[2]) "
                  "{ index i[0:1]; p[i] = 1.0; }")

    def test_assign_to_index_rejected(self):
        with pytest.raises(PMLangSemanticError, match="cannot assign"):
            check("main(output float y[2]) { index i[0:1]; i = 1; }")

    def test_state_is_read_write(self):
        check("main(state float s[2], output float y[2]) "
              "{ index i[0:1]; s[i] = s[i] + 1.0; y[i] = s[i]; }")

    def test_output_readable_within_component(self):
        # Matches the paper's Fig 4 (update_ctrl_model reads ctrl_mdl).
        check("main(input float x[2], output float y[2]) "
              "{ index i[0:1]; y[i] = x[i]; y[i] = y[i] + 1.0; }")


class TestCalls:
    GOOD_CALLEE = "f(input float a[2], output float b[2]) { index i[0:1]; b[i] = a[i]; }\n"

    def test_unknown_component_rejected(self):
        with pytest.raises(PMLangSemanticError, match="unknown component"):
            check("main(input float x[2]) { g(x); }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(PMLangSemanticError, match="expects 2"):
            check(self.GOOD_CALLEE + "main(input float x[2]) { f(x); }")

    def test_output_actual_must_be_name(self):
        with pytest.raises(PMLangSemanticError, match="must be a variable"):
            check(
                self.GOOD_CALLEE
                + "main(input float x[2], output float y[2]) { f(x, x + y); }"
            )

    def test_input_bound_to_output_param_rejected(self):
        with pytest.raises(PMLangSemanticError, match="cannot bind input"):
            check(
                self.GOOD_CALLEE
                + "main(input float x[2], output float y[2]) { f(y, x); }"
            )

    def test_direct_recursion_rejected(self):
        with pytest.raises(PMLangSemanticError, match="recursive"):
            check(
                "main(input float x[2], output float y[2]) { main(x, y); }"
            )

    def test_mutual_recursion_rejected(self):
        source = (
            "a(input float x[2], output float y[2]) { b(x, y); }\n"
            "b(input float x[2], output float y[2]) { a(x, y); }\n"
            "main(input float x[2], output float y[2]) { a(x, y); }"
        )
        with pytest.raises(PMLangSemanticError, match="recursive"):
            check(source)


class TestFunctionsAndReductions:
    def test_unknown_function_rejected(self):
        with pytest.raises(PMLangSemanticError, match="unknown function"):
            check("main(input float x[2], output float y[2]) "
                  "{ index i[0:1]; y[i] = frobnicate(x[i]); }")

    def test_function_arity_checked(self):
        with pytest.raises(PMLangSemanticError, match="expects 1"):
            check("main(input float x[2], output float y[2]) "
                  "{ index i[0:1]; y[i] = sin(x[i], x[i]); }")

    def test_unknown_reduction_rejected(self):
        with pytest.raises(PMLangSemanticError, match="unknown reduction"):
            check("main(input float x[2], output float r) "
                  "{ index i[0:1]; r = median[i](x[i]); }")

    def test_custom_reduction_visible(self):
        check(
            "reduction rmin(a,b) = a < b ? a : b;\n"
            "main(input float x[4], output float r) "
            "{ index i[0:3]; r = rmin[i](x[i]); }"
        )

    def test_reduction_body_restricted_to_params(self):
        with pytest.raises(PMLangSemanticError, match="only reference"):
            check(
                "reduction bad(a,b) = a + c;\n"
                "main(input float x[2], output float y[2]) "
                "{ index i[0:1]; y[i] = x[i]; }"
            )

    def test_reduction_body_must_be_scalar(self):
        with pytest.raises(PMLangSemanticError, match="scalar"):
            check(
                "reduction bad(a,b) = a[0] + b;\n"
                "main(input float x[2], output float y[2]) "
                "{ index i[0:1]; y[i] = x[i]; }"
            )

    def test_name_clash_component_reduction(self):
        with pytest.raises(PMLangSemanticError, match="both"):
            check(
                "reduction f(a,b) = a + b;\n"
                "f(input float x[2], output float y[2]) "
                "{ index i[0:1]; y[i] = x[i]; }\n"
                "main(input float x[2], output float y[2]) { f(x, y); }"
            )


class TestUnroll:
    def test_unroll_binder_usable(self):
        check("main(input float x[8], output float y[8]) "
              "{ index t[0:7]; unroll s[0:2] { y[t] = x[t] + s; } }")

    def test_unroll_shadowing_rejected(self):
        with pytest.raises(PMLangSemanticError, match="shadows"):
            check("main(input float s[2], output float y[2]) "
                  "{ index i[0:1]; unroll s[0:2] { y[i] = 1.0; } }")
