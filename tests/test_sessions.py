"""Suite for long-lived stateful serving sessions (repro.serve.Session).

The contracts under test:

* a >=50-step session builds exactly one plan per shape bucket
  (PLAN_STATS counter-asserted) and its outputs are bit-identical to
  one-shot requests that thread state/step_offset client-side — the
  session path skips work, never changes math,
* shape-mismatched dims, step inputs, and initial state are refused at
  admission with a descriptive :class:`ShapeError` before any worker is
  occupied (counted as ``invalid``, outside the conservation identity),
* sessions are strictly sequential and refuse steps after close,
* per-step deadlines ride the existing scheduler machinery, and an
  expired step does not advance session state,
* dim overrides are rounded by the server's bucket policy, and a
  session at rounded dims matches one-shot requests at the raw dims,
* every session renders as one trace lane (``track``) and shows up in
  the ServeReport with its bucket, step count, and latency quantiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServeError, ShapeError
from repro.obs import Tracer
from repro.serve import Request, Server
from repro.srdfg.plan import PLAN_STATS


def _chain_signatures(server, name, steps, dims=None, start_state=None):
    """One-shot requests threading state/step_offset client-side."""
    signatures, state = [], start_state
    for index in range(steps):
        response = server.request(
            Request(
                name, steps=1, dims=dims,
                step_offset=index, initial_state=state,
            )
        )
        assert response.ok, response.error
        signatures.append(response.signature)
        state = response.state
    return signatures


# ---------------------------------------------------------------------------
# The headline contract: 50 steps, one plan, bit-identical.
# ---------------------------------------------------------------------------


def test_fifty_step_session_builds_one_plan_and_is_bit_identical():
    steps = 50
    baseline = PLAN_STATS.snapshot().graphs_planned
    with Server(workers=2) as server:
        with server.open_session("MobileRobot") as session:
            signatures = []
            for _ in range(steps):
                response = session.step()
                assert response.ok, response.error
                signatures.append(response.signature)
        assert session.steps_done == steps
        # Exactly one plan was built for the session's (single) bucket,
        # however many steps ran.
        assert PLAN_STATS.snapshot().graphs_planned - baseline == 1

        # The one-shot twin threads state client-side; the plan tier
        # serves it, so still no new plan.
        assert _chain_signatures(server, "MobileRobot", steps) == signatures
        assert PLAN_STATS.snapshot().graphs_planned - baseline == 1

    report = server.report()
    # Steps 2..N reused the pinned app and plan without cache lookups.
    assert report.provenance["compile"].get("session", 0) == steps - 1
    assert report.provenance["plan"].get("session", 0) == steps - 1
    (summary,) = report.sessions
    assert summary["workload"] == "MobileRobot"
    assert summary["steps"] == steps
    assert summary["closed"] is True
    assert "sessions: 1 opened" in report.render()


# ---------------------------------------------------------------------------
# Admission: descriptive ShapeErrors before a worker is occupied.
# ---------------------------------------------------------------------------


def test_admission_rejects_unknown_dim_before_enqueue():
    with Server(workers=1) as server:
        with pytest.raises(ShapeError) as info:
            server.open_session("MobileRobot", dims={"batch": 4})
        assert "batch" in str(info.value)
        report = server.report()
    # Never submitted: invalid admissions sit outside the conservation
    # identity instead of leaking an unaccounted request.
    assert report.submitted == 0
    assert report.invalid == 1


def test_admission_rejects_bad_step_inputs_and_state():
    with Server(workers=1) as server:
        session = server.open_session("MobileRobot")
        good = session.step()
        assert good.ok

        shapes = {
            name: np.asarray(value).shape
            for name, value in session.workload.inputs(1, session.previous).items()
        }
        name, shape = next(iter(shapes.items()))
        with pytest.raises(ShapeError) as info:
            session.step(inputs={name: np.zeros(tuple(shape) + (2,))})
        assert info.value.name == name
        assert info.value.expected == tuple(shape)
        # The refused step did not advance the session.
        assert session.steps_done == 1

        with pytest.raises(ShapeError):
            server.submit(
                Request(
                    "MobileRobot", steps=1,
                    initial_state={"no_such_state": np.zeros(3)},
                )
            )
        report = server.report()
    assert report.invalid == 2
    assert report.submitted == report.accounted
    assert "admission: 2 refused" in report.render()


# ---------------------------------------------------------------------------
# Lifecycle: sequential steps, closed sessions.
# ---------------------------------------------------------------------------


def test_sessions_are_sequential_and_close_refuses_steps():
    with Server(workers=2) as server:
        session = server.open_session("MobileRobot")
        ticket = session.submit_step()
        # The first step compiles, so it is still outstanding here.
        with pytest.raises(ServeError):
            session.submit_step()
        assert ticket.wait(timeout=120).ok

        summary = session.close()
        assert summary["closed"] is True
        with pytest.raises(ServeError):
            session.step()


def test_expired_step_does_not_advance_state():
    with Server(workers=1) as server:
        with server.open_session("MobileRobot") as session:
            assert session.step().ok
            state_before = {
                key: np.array(value) for key, value in session.state.items()
            }

            expired = session.step(deadline_s=1e-9)
            assert not expired.ok
            assert expired.error_kind == "DeadlineExceededError"
            assert session.steps_done == 1
            for key, value in state_before.items():
                np.testing.assert_array_equal(session.state[key], value)

            # The client retries the same step and the stream continues.
            retry = session.step()
            assert retry.ok
            assert session.steps_done == 2


# ---------------------------------------------------------------------------
# Dim overrides and bucket rounding.
# ---------------------------------------------------------------------------


def test_session_at_rounded_dims_matches_one_shot_at_raw_dims():
    steps = 6
    with Server(workers=2, bucket_policy="pow2") as server:
        with server.open_session("FFT-8192", dims={"n": 1000}) as session:
            # pow2 rounds the requested 1000 up into a valid FFT size.
            assert session.dims() == {"n": 1024}
            signatures = []
            for _ in range(steps):
                response = session.step()
                assert response.ok, response.error
                signatures.append(response.signature)

        # One-shot requests at the *raw* dims round to the same bucket.
        assert (
            _chain_signatures(server, "FFT-8192", steps, dims={"n": 1000})
            == signatures
        )
        stats = server.session.cache.stats
    assert stats.bucket_stores == 1
    assert stats.bucket_hits >= steps  # chain requests hit the bucket


def test_structural_violation_survives_exact_policy():
    with Server(workers=1) as server:  # exact: no rounding to hide behind
        with pytest.raises(ShapeError):
            server.open_session("FFT-8192", dims={"n": 1000})


# ---------------------------------------------------------------------------
# Observability: one session, one trace lane, reported quantiles.
# ---------------------------------------------------------------------------


def test_session_spans_share_one_track():
    tracer = Tracer()
    with Server(workers=2, tracer=tracer) as server:
        with server.open_session("MobileRobot") as session:
            for _ in range(3):
                assert session.step().ok
        track = session.track

    tracked = [span for span in tracer.spans() if span.track == track]
    assert any(span.name == "session-open" for span in tracked)
    assert any(span.name.startswith("request") for span in tracked)
    assert any(span.name == "session-close" for span in tracked)

    from repro.obs import chrome_trace

    events = chrome_trace(tracer)["traceEvents"]
    names = {
        event["args"]["name"]
        for event in events
        if event.get("ph") == "M" and event.get("name") == "thread_name"
    }
    assert track in names


def test_session_summary_reports_latency_quantiles():
    with Server(workers=1) as server:
        session = server.open_session("MobileRobot")
        for _ in range(4):
            assert session.step().ok
        summary = session.close()
    assert summary["steps"] == 4
    assert summary["step_seconds"]["p50"] > 0
    assert summary["step_seconds"]["p99"] >= summary["step_seconds"]["p50"]
    assert summary["bucket"] is not None
