"""Unit tests for Algorithm 1 (lowering) and component inlining."""

import numpy as np
import pytest

from repro.errors import LoweringError
from repro.passes.lowering import lower, supported_summary
from repro.srdfg import Executor, build

ALL_SCALAR = {"alu", "mul", "div", "nonlinear"}


class TestSupportDecisions:
    def test_supported_group_op_kept(self, matvec_source):
        graph = build(matvec_source, domain="DA")
        lower(graph, {"DA": {"matvec"}}, {"DA": ALL_SCALAR})
        [node] = graph.compute_nodes()
        assert node.attrs["lowered"] == "group"

    def test_unsupported_group_op_marked_scalar(self, matvec_source):
        graph = build(matvec_source, domain="DA")
        lower(graph, {"DA": set()}, {"DA": ALL_SCALAR})
        [node] = graph.compute_nodes()
        assert node.attrs["lowered"] == "scalar"

    def test_unsupported_scalar_class_fails(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = sigmoid(x[i]); }"
        )
        graph = build(source, domain="DA")
        with pytest.raises(LoweringError, match="nonlinear"):
            lower(graph, {"DA": set()}, {"DA": {"alu", "mul"}})

    def test_macro_component_kept_whole(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        om = {"RBT": {"predict_trajectory", "compute_ctrl_grad",
                      "update_ctrl_model", "copy"}}
        lower(graph, om, {"RBT": ALL_SCALAR})
        names = {node.name for node in graph.component_nodes()}
        assert {"predict_trajectory", "compute_ctrl_grad", "update_ctrl_model"} <= names

    def test_supported_summary(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        lower(
            graph,
            {"RBT": {"matvec", "copy", "elemwise_sub", "elemwise_add", "contract"}},
            {"RBT": ALL_SCALAR},
        )
        summary = supported_summary(graph)
        assert summary.get("group", 0) > 0


class TestInliningCorrectness:
    def test_everything_inlined(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        lower(graph, {"RBT": set()}, {"RBT": ALL_SCALAR})
        assert graph.component_nodes() == []
        assert graph.depth() == 0
        graph.validate()

    def test_inlined_execution_identical(
        self, mpc_source, mpc_data, mpc_reference_result
    ):
        graph = build(mpc_source, domain="RBT")
        lower(graph, {"RBT": set()}, {"RBT": ALL_SCALAR})
        result = Executor(graph).run(**mpc_data)
        assert np.allclose(
            result.outputs["ctrl_sgnl"], mpc_reference_result["ctrl_sgnl"]
        )
        assert np.allclose(
            result.state["ctrl_mdl"], mpc_reference_result["ctrl_mdl"]
        )

    def test_nested_inlining(self):
        source = (
            "inner(input float a[4], output float b[4]) {"
            " index i[0:3]; b[i] = a[i] * 2.0; }\n"
            "outer(input float a[4], output float b[4]) {"
            " float t[4]; index i[0:3];"
            " inner(a, t);"
            " b[i] = t[i] + 1.0; }\n"
            "main(input float x[4], output float y[4]) { outer(x, y); }"
        )
        graph = build(source)
        lower(graph, {"DA": set()}, {"DA": ALL_SCALAR})
        assert graph.component_nodes() == []
        result = Executor(graph).run(inputs={"x": np.arange(4.0)})
        assert np.allclose(result.outputs["y"], np.arange(4.0) * 2 + 1)

    def test_state_survives_inlining(self):
        source = (
            "accumulate(input float x, state float acc, output float y) {"
            " acc = acc + x; y = acc; }\n"
            "main(input float x, state float acc, output float y) {"
            " accumulate(x, acc, y); }"
        )
        graph = build(source)
        lower(graph, {"DA": set()}, {"DA": ALL_SCALAR})
        executor = Executor(graph)
        state = {}
        for expected in (1.0, 2.0, 3.0):
            result = executor.run(inputs={"x": 1.0}, state=state)
            state = result.state
            assert float(result.outputs["y"]) == expected

    def test_output_passthrough_when_never_written(self):
        source = (
            "noop(input float a[2], output float b[2]) { }\n"
            "main(input float x[2], output float y[2]) { noop(x, y); }"
        )
        graph = build(source)
        lower(graph, {"DA": set()}, {"DA": ALL_SCALAR})
        result = Executor(graph).run(inputs={"x": np.ones(2)})
        assert np.allclose(result.outputs["y"], 0.0)

    def test_domains_preserved_across_inlining(self):
        source = (
            "f(input float a[2], output float b[2]) {"
            " index i[0:1]; b[i] = a[i] * 2.0; }\n"
            "g(input float a[2], output float b[2]) {"
            " index i[0:1]; b[i] = a[i] + 1.0; }\n"
            "main(input float x[2], output float y[2]) {"
            " float t[2];"
            " DSP: f(x, t);"
            " DA: g(t, y); }"
        )
        graph = build(source, domain="DA")
        lower(graph, {"DA": set(), "DSP": set()},
              {"DA": ALL_SCALAR, "DSP": ALL_SCALAR})
        domains = {node.domain for node in graph.compute_nodes()}
        assert domains == {"DSP", "DA"}
        result = Executor(graph).run(inputs={"x": np.array([1.0, 2.0])})
        assert np.allclose(result.outputs["y"], [3.0, 5.0])

    def test_per_domain_support_sets(self):
        # The same op name can be supported in one domain, not another.
        source = (
            "f(input float a[2], output float b[2]) {"
            " index i[0:1]; b[i] = a[i] * 2.0; }\n"
            "main(input float x[2], output float y[2]) {"
            " float t[2];"
            " DSP: f(x, t);"
            " DA: f(t, y); }"
        )
        graph = build(source, domain="DA")
        lower(
            graph,
            {"DA": {"f"}, "DSP": set()},
            {"DA": ALL_SCALAR, "DSP": ALL_SCALAR},
        )
        remaining = graph.component_nodes()
        assert len(remaining) == 1
        assert remaining[0].domain == "DA"
