"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture()
def mpc_file(tmp_path, mpc_source):
    path = tmp_path / "mpc.pm"
    path.write_text(mpc_source)
    return str(path)


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "MobileRobot" in out
        assert "BrainStimul" in out


class TestCheckCommand:
    def test_single_workload_passes(self, capsys):
        assert main(["check", "MobileRobot"]) == 0
        assert "ok" in capsys.readouterr().out


class TestCompileCommand:
    def test_compile_prints_programs(self, capsys, mpc_file):
        assert main(["compile", mpc_file, "--domain", "RBT"]) == 0
        out = capsys.readouterr().out
        assert "RBT -> robox" in out
        assert "matvec" in out


class TestStatsCommand:
    def test_stats_reports_stages_and_cache(self, capsys, mpc_file):
        assert main(["stats", mpc_file, "--domain", "RBT"]) == 0
        out = capsys.readouterr().out
        for stage in ("parse", "semantic", "srdfg-build", "optimize",
                      "lower", "translate"):
            assert stage in out
        # Default --repeat 2: the second compile hits the artifact cache.
        assert "cache-hit" in out
        assert "1 hit(s) / 1 miss(es)" in out
        assert "nodes" in out and "edges" in out
        assert "diagnostics:" in out

    def test_stats_single_compile_never_hits(self, capsys, mpc_file):
        assert main(["stats", mpc_file, "--domain", "RBT", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "cache-hit" not in out
        assert "0 hit(s) / 1 miss(es)" in out


class TestShowCommand:
    def test_text_rendering(self, capsys, mpc_file):
        assert main(["show", mpc_file, "--domain", "RBT"]) == 0
        out = capsys.readouterr().out
        assert "srDFG 'main'" in out
        assert "mvmul" in out

    def test_dot_rendering(self, capsys, mpc_file):
        assert main(["show", mpc_file, "--dot"]) == 0
        assert capsys.readouterr().out.startswith("digraph")


class TestTablesAndFigures:
    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for table in ("Table I", "Table II", "Table III", "Table IV",
                      "Table V", "Table VI"):
            assert table in out

    def test_unknown_figure_rejected(self, capsys):
        assert main(["figures", "fig99"]) == 2

    def test_single_figure(self, capsys):
        assert main(["figures", "fig13"]) == 0
        assert "Figure 13" in capsys.readouterr().out


class TestProfileAndDse:
    def test_profile_command(self, capsys, mpc_file):
        assert main(["profile", mpc_file, "--domain", "RBT", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "total accelerator time" in out

    def test_dse_command(self, capsys):
        assert main(
            ["dse", "MobileRobot", "robox", "--scales", "1,2",
             "--freqs-mhz", "500,1000"]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out

    def test_dse_unknown_accelerator(self, capsys):
        assert main(["dse", "MobileRobot", "tpu"]) == 2

    def test_save_ir_command(self, capsys, mpc_file, tmp_path):
        out_path = tmp_path / "ir.json"
        assert main(
            ["save-ir", mpc_file, "--domain", "RBT", "--out", str(out_path)]
        ) == 0
        import json

        payload = json.loads(out_path.read_text())
        assert payload["format"] == "polymath-accelerator-ir"


class TestServeSessions:
    def test_session_mode_compares_against_one_shot(self, capsys, tmp_path):
        out = tmp_path / "serve.json"
        assert main(
            ["serve", "--sessions", "1", "--session-steps", "6",
             "--workloads", "MobileRobot", "--assert-plan-reuse",
             "--assert-conservation", "--json", str(out)]
        ) == 0
        text = capsys.readouterr().out
        assert "sessions: 1 opened" in text
        assert "bit-identity ok" in text

        import json

        payload = json.loads(out.read_text())
        compare = payload["session_compare"]
        assert compare["bit_identical"] is True
        assert compare["steps"] == 6
        assert payload["sessions"][0]["steps"] == 6

    def test_session_mode_rejects_bad_dims(self, capsys):
        assert main(
            ["serve", "--sessions", "1", "--workloads", "MobileRobot",
             "--dims", "nonsense"]
        ) == 2
        assert "bad --dims" in capsys.readouterr().err

    def test_fuzz_dim_variants_tag_matrix_rows(self, capsys):
        assert main(
            ["fuzz", "--programs", "2", "--campaigns", "none",
             "--dim-variants", "2", "--json", "none", "--no-minimize"]
        ) == 0
        assert "2 dim variant(s)" in capsys.readouterr().out
