"""Tests that synthetic datasets have the statistical shape they claim."""

import numpy as np
import pytest

from repro.workloads.datasets import (
    bandlimited_signal,
    gaussian_clusters,
    image_batch,
    mpc_problem,
    natural_image,
    option_chain,
    rating_matrix,
    rmat_graph,
    sentiment_features,
)


class TestRmatGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        return rmat_graph(1024, 16, seed=1)

    def test_deterministic(self):
        a = rmat_graph(256, 8, seed=7)
        b = rmat_graph(256, 8, seed=7)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_edge_count_near_target(self, graph):
        target = 1024 * 16
        assert 0.5 * target < graph.edges < 1.5 * target

    def test_no_self_loops_from_sampling(self, graph):
        # The backbone may touch the diagonal's neighbours but sampling
        # rejects u == v; at most the |V|-1 backbone edges remain off it.
        assert np.trace(graph.adjacency) == 0

    def test_power_law_degree_skew(self, graph):
        # Heavy tail: the max in-degree dwarfs the mean (uniform graphs
        # concentrate near the mean).
        in_degree = graph.adjacency.sum(axis=0)
        assert in_degree.max() > 4 * in_degree.mean()

    def test_weights_only_on_edges(self, graph):
        assert np.all((graph.weights > 0) == (graph.adjacency > 0))

    def test_hints_consistent(self, graph):
        hints = graph.hints
        assert hints["edges"] == graph.edges
        assert hints["op_scale"] == pytest.approx(
            graph.edges / graph.vertices**2
        )

    def test_reachability_from_source(self, graph):
        from repro.workloads.reference import UNREACHED, bfs_levels

        levels = bfs_levels(graph.adjacency, graph.source)
        # The backbone guarantees everything is reachable.
        assert np.all(levels < UNREACHED)


class TestRatingMatrix:
    @pytest.fixture(scope="class")
    def data(self):
        return rating_matrix(200, 300, 5000, rank=8, seed=2)

    def test_observation_count(self, data):
        assert data.observed == 5000
        assert data.mask.sum() == 5000

    def test_ratings_zero_where_unobserved(self, data):
        assert np.all(data.ratings[data.mask == 0] == 0)

    def test_ratings_in_range(self, data):
        observed = data.ratings[data.mask == 1]
        assert observed.min() >= 0.5
        assert observed.max() <= 5.0

    def test_low_rank_structure_recoverable(self, data):
        # The dense generator is rank-8 + noise: the top-8 singular values
        # must dominate.
        full = rating_matrix(200, 300, 200 * 300, rank=8, seed=2)
        dense = full.ratings
        singular = np.linalg.svd(dense - dense.mean(), compute_uv=False)
        assert singular[:8].sum() > 1.5 * singular[8:].sum()


class TestClustersAndSignals:
    def test_clusters_separable(self):
        data = gaussian_clusters(600, 16, 3, spread=6.0, seed=3)
        # Variance around each cluster's own mean (unit Gaussians) is far
        # below the variance around the grand mean (which includes the
        # centre spread).
        grand = ((data.points - data.points.mean(axis=0)) ** 2).mean()

        def around_own_mean(k):
            members = data.points[data.labels == k]
            return ((members - members.mean(axis=0)) ** 2).mean()

        intra = np.mean([around_own_mean(k) for k in range(3)])
        assert intra < grand / 5

    def test_bandlimited_signal_spectrum(self):
        signal = bandlimited_signal(4096, seed=4)
        spectrum = np.abs(np.fft.rfft(signal))
        low = spectrum[: 4096 // 8].sum()
        high = spectrum[4096 // 4 :].sum()
        assert low > 5 * high  # energy concentrated below n/8

    def test_natural_image_smoothness(self):
        image = natural_image(128, 128, seed=5)
        assert image.min() >= 0 and image.max() <= 255
        # 1/f spectrum: neighbouring pixels correlate strongly.
        flat = image - image.mean()
        corr = np.mean(flat[:, :-1] * flat[:, 1:]) / flat.var()
        assert corr > 0.5

    def test_image_batch_shape(self):
        tensor = image_batch(3, 32, 32, seed=6)
        assert tensor.shape == (3, 32, 32)


class TestFinancialAndMisc:
    def test_option_chain_plausible(self):
        chain = option_chain(1000, seed=7)
        assert np.all(chain.spot > 0)
        assert np.all(chain.maturity > 0)
        assert np.all(chain.volatility > 0)
        assert 0 < chain.rate < 0.1

    def test_sentiment_features_zipf_tail(self):
        frequencies, weights = sentiment_features(4096, seed=8)
        assert frequencies.shape == weights.shape == (4096,)
        assert np.all(frequencies >= 0)
        # Zipf: few heavy words, many light ones.
        assert np.median(frequencies) < frequencies.mean()

    def test_mpc_problem_shapes(self):
        problem = mpc_problem(3, 30, 20, 2, seed=9)
        assert problem["P"].shape == (30, 3)
        assert problem["H"].shape == (30, 20)
        assert problem["HQ_g"].shape == (20, 30)
        assert problem["R_g"].shape == (20, 20)
        assert problem["pos_ref"].shape == (30,)
