"""Unit tests for the vectorised srDFG interpreter."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.srdfg import Executor, build


def run(source, inputs=None, params=None, state=None, **kwargs):
    graph = build(source)
    return Executor(graph, **kwargs).run(inputs=inputs, params=params, state=state)


class TestBasicStatements:
    def test_elementwise_add(self):
        result = run(
            "main(input float a[4], input float b[4], output float y[4]) {"
            " index i[0:3]; y[i] = a[i] + b[i]; }",
            inputs={"a": np.arange(4.0), "b": np.ones(4)},
        )
        assert np.allclose(result.outputs["y"], [1, 2, 3, 4])

    def test_scalar_assignment(self):
        result = run(
            "main(input float x[3], output float r) {"
            " index i[0:2]; r = sum[i](x[i]); }",
            inputs={"x": np.array([1.0, 2.0, 3.0])},
        )
        assert float(result.outputs["r"]) == 6.0

    def test_literal_broadcast(self):
        result = run(
            "main(output float y[5]) { index i[0:4]; y[i] = 2.5; }"
        )
        assert np.allclose(result.outputs["y"], 2.5)

    def test_builtin_functions(self):
        result = run(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = sigmoid(x[i]); }",
            inputs={"x": np.array([-2.0, 0.0, 1.0, 5.0])},
        )
        expected = 1.0 / (1.0 + np.exp(-np.array([-2.0, 0.0, 1.0, 5.0])))
        assert np.allclose(result.outputs["y"], expected)

    def test_ternary(self):
        result = run(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] > 0.0 ? x[i] : 0.0 - x[i]; }",
            inputs={"x": np.array([-1.0, 2.0, -3.0, 4.0])},
        )
        assert np.allclose(result.outputs["y"], [1, 2, 3, 4])

    def test_int_dtype_preserved(self):
        result = run(
            "main(input int x[4], output int y[4]) {"
            " index i[0:3]; y[i] = x[i] + 1; }",
            inputs={"x": np.arange(4)},
        )
        assert result.outputs["y"].dtype == np.int64


class TestIndexing:
    def test_strided_read(self):
        result = run(
            "main(input float x[8], output float y[4]) {"
            " index i[0:3]; y[i] = x[2*i]; }",
            inputs={"x": np.arange(8.0)},
        )
        assert np.allclose(result.outputs["y"], [0, 2, 4, 6])

    def test_strided_write_merges_previous(self):
        result = run(
            "main(input float x[4], output float y[8]) {"
            " index i[0:7], j[0:3];"
            " y[i] = 1.0;"
            " y[2*j] = x[j]; }",
            inputs={"x": np.array([10.0, 20.0, 30.0, 40.0])},
        )
        assert np.allclose(result.outputs["y"], [10, 1, 20, 1, 30, 1, 40, 1])

    def test_gather_via_index_array(self):
        result = run(
            "main(input float x[4], param int p[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[p[i]]; }",
            inputs={"x": np.array([5.0, 6.0, 7.0, 8.0])},
            params={"p": np.array([3, 2, 1, 0])},
        )
        assert np.allclose(result.outputs["y"], [8, 7, 6, 5])

    def test_out_of_range_read_raises(self):
        with pytest.raises(ExecutionError, match="out of range"):
            run(
                "main(input float x[4], output float y[4]) {"
                " index i[0:3]; y[i] = x[i+1]; }",
                inputs={"x": np.zeros(4)},
            )

    def test_out_of_range_write_raises(self):
        with pytest.raises(ExecutionError, match="out of range"):
            run(
                "main(input float x[4], output float y[4]) {"
                " index i[0:3]; y[i+1] = x[i]; }",
                inputs={"x": np.zeros(4)},
            )

    def test_transposed_access(self):
        a = np.arange(6.0).reshape(2, 3)
        result = run(
            "main(input float a[2][3], output float y[3][2]) {"
            " index i[0:1], j[0:2]; y[j][i] = a[i][j]; }",
            inputs={"a": a},
        )
        assert np.allclose(result.outputs["y"], a.T)


class TestReductions:
    def test_matvec_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, x = rng.normal(size=(5, 7)), rng.normal(size=7)
        result = run(
            "main(input float A[5][7], input float x[7], output float y[5]) {"
            " index i[0:6], j[0:4]; y[j] = sum[i](A[j][i]*x[i]); }",
            inputs={"A": a, "x": x},
        )
        assert np.allclose(result.outputs["y"], a @ x)

    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(4, 6)), rng.normal(size=(6, 5))
        result = run(
            "main(input float A[4][6], input float B[6][5], output float C[4][5]) {"
            " index i[0:3], j[0:4], k[0:5]; C[i][j] = sum[k](A[i][k]*B[k][j]); }",
            inputs={"A": a, "B": b},
        )
        assert np.allclose(result.outputs["C"], a @ b)

    def test_predicate_masks_elements(self):
        result = run(
            "main(input float A[3][3], output float r) {"
            " index i[0:2], j[0:2]; r = sum[i][j: j != i](A[i][j]); }",
            inputs={"A": np.ones((3, 3))},
        )
        assert float(result.outputs["r"]) == 6.0

    def test_min_with_predicate_identity(self):
        # All-masked lanes fall back to +inf for min.
        result = run(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3], v[0:3];"
            " y[v] = min[i: i > 5](x[i]); }",
            inputs={"x": np.arange(4.0)},
        )
        assert np.all(np.isinf(result.outputs["y"]))

    def test_prod(self):
        result = run(
            "main(input float x[4], output float r) {"
            " index i[0:3]; r = prod[i](x[i]); }",
            inputs={"x": np.array([1.0, 2.0, 3.0, 4.0])},
        )
        assert float(result.outputs["r"]) == 24.0

    def test_argmax_returns_position(self):
        result = run(
            "main(input float x[5], output float r) {"
            " index i[0:4]; r = argmax[i](x[i]); }",
            inputs={"x": np.array([1.0, 9.0, 3.0, 9.5, 0.0])},
        )
        assert int(result.outputs["r"]) == 3

    def test_argmin_per_row(self):
        a = np.array([[3.0, 1.0, 2.0], [0.5, 4.0, 0.1]])
        result = run(
            "main(input float A[2][3], output float y[2]) {"
            " index r[0:1], c[0:2]; y[r] = argmin[c](A[r][c]); }",
            inputs={"A": a},
        )
        assert np.allclose(result.outputs["y"], [1, 2])

    def test_custom_reduction(self):
        result = run(
            "reduction rmax(a,b) = a > b ? a : b;\n"
            "main(input float x[5], output float r) {"
            " index i[0:4]; r = rmax[i](x[i]); }",
            inputs={"x": np.array([3.0, -1.0, 7.0, 2.0, 5.0])},
        )
        assert float(result.outputs["r"]) == 7.0

    def test_custom_reduction_with_predicate(self):
        result = run(
            "reduction rmin(a,b) = a < b ? a : b;\n"
            "main(input float x[6], output float r) {"
            " index i[0:5]; r = rmin[i: i % 2 == 0](x[i]); }",
            inputs={"x": np.array([9.0, 0.0, 4.0, 0.0, 6.0, 0.0])},
        )
        assert float(result.outputs["r"]) == 4.0

    def test_reduction_of_unreferenced_index_scales(self):
        # sum over i of a constant multiplies by the range size.
        result = run(
            "main(input float c, output float r) {"
            " index i[0:9]; r = sum[i](c); }",
            inputs={"c": 2.0},
        )
        assert float(result.outputs["r"]) == 20.0

    def test_fused_reduction_expression(self):
        rng = np.random.default_rng(3)
        a, x, b = rng.normal(size=(4, 4)), rng.normal(size=4), rng.normal(size=4)
        result = run(
            "main(input float A[4][4], input float x[4], input float b[4],"
            " output float y[4]) {"
            " index i[0:3], j[0:3]; y[j] = sum[i](A[j][i]*x[i]) + b[j]; }",
            inputs={"A": a, "x": x, "b": b},
        )
        assert np.allclose(result.outputs["y"], a @ x + b)

    def test_chunked_reduction_equals_unchunked(self):
        rng = np.random.default_rng(4)
        a, x = rng.normal(size=(16, 64)), rng.normal(size=64)
        source = (
            "main(input float A[16][64], input float x[64], output float y[16]) {"
            " index i[0:63], j[0:15];"
            " y[j] = sum[i](A[j][i]*x[i+0-0]*1.0); }"
        )
        # The odd subscript defeats the einsum fast path so the general
        # (and, with a tiny limit, chunked) evaluator runs.
        big = run(source, inputs={"A": a, "x": x})
        small = run(source, inputs={"A": a, "x": x}, lattice_limit=64)
        assert np.allclose(big.outputs["y"], small.outputs["y"])
        assert np.allclose(big.outputs["y"], a @ x)


class TestStateAndAliasing:
    def test_state_threads_across_invocations(self):
        graph = build(
            "main(input float x, state float acc, output float y) {"
            " acc = acc + x; y = acc; }"
        )
        executor = Executor(graph)
        state = {}
        values = []
        for step in range(3):
            result = executor.run(inputs={"x": 1.0}, state=state)
            state = result.state
            values.append(float(result.outputs["y"]))
        assert values == [1.0, 2.0, 3.0]

    def test_output_aliasing_preserves_unwritten_elements(self, mpc_source,
                                                          mpc_data,
                                                          mpc_reference_result):
        graph = build(mpc_source, domain="RBT")
        result = Executor(graph).run(**mpc_data)
        assert np.allclose(result.outputs["ctrl_sgnl"],
                           mpc_reference_result["ctrl_sgnl"])
        assert np.allclose(result.state["ctrl_mdl"],
                           mpc_reference_result["ctrl_mdl"])

    def test_missing_input_raises(self):
        with pytest.raises(ExecutionError, match="missing input"):
            run("main(input float x, output float y) { y = x; }")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ExecutionError, match="shape"):
            run(
                "main(input float x[4], output float y[4]) {"
                " index i[0:3]; y[i] = x[i]; }",
                inputs={"x": np.zeros(5)},
            )

    def test_unwritten_output_defaults_to_zero(self):
        result = run(
            "main(input float x, output float y[3]) { }",
            inputs={"x": 1.0},
        )
        assert np.allclose(result.outputs["y"], 0.0)


class TestUnrollSemantics:
    def test_unroll_accumulates(self):
        result = run(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " y[i] = x[i];"
            " unroll s[1:3] { y[i] = y[i] * 2.0; } }",
            inputs={"x": np.ones(4)},
        )
        assert np.allclose(result.outputs["y"], 8.0)

    def test_unroll_binder_value_visible(self):
        result = run(
            "main(output float y[3]) {"
            " unroll s[0:2] { y[s] = s * 10.0; } }"
        )
        assert np.allclose(result.outputs["y"], [0, 10, 20])


class TestGuardedAccess:
    def test_predicate_guards_out_of_range_reads(self):
        # The guarded-stencil idiom: sum[j: i+j < n](x[i+j]).
        result = run(
            "main(input float x[8], param float w[3], output float y[8]) {"
            " index i[0:7], j[0:2];"
            " y[i] = sum[j: i + j < 8](w[j] * x[i + j]); }",
            inputs={"x": np.arange(8.0)},
            params={"w": np.array([1.0, 1.0, 1.0])},
        )
        expected = np.array(
            [sum(i + j for j in range(3) if i + j < 8) for i in range(8)],
            dtype=float,
        )
        assert np.allclose(result.outputs["y"], expected)

    def test_unguarded_out_of_range_still_raises(self):
        # The predicate does not cover the violation -> hard error.
        with pytest.raises(ExecutionError, match="out of range"):
            run(
                "main(input float x[8], output float y[8]) {"
                " index i[0:7], j[0:2];"
                " y[i] = sum[j: j >= 0](x[i + j]); }",
                inputs={"x": np.arange(8.0)},
            )


class TestRenderBars:
    def test_bar_chart_renders(self):
        from repro.eval.figures import FigureData

        data = FigureData(
            figure="Fig T",
            caption="test",
            columns=("name", "value"),
            rows=[("a", 1.0), ("bb", 4.0)],
        )
        chart = data.render_bars()
        assert "Fig T" in chart
        assert chart.count("#") > 10
        assert "4.00" in chart


class TestComplexDtype:
    def test_complex_elementwise(self):
        z = np.array([1 + 2j, 3 - 1j, -2 + 0.5j])
        w = np.array([2 + 0j, 1 + 1j, 0 - 1j])
        result = run(
            "main(input complex a[3], input complex b[3],"
            " output complex y[3]) {"
            " index i[0:2]; y[i] = a[i] * b[i] + a[i]; }",
            inputs={"a": z, "b": w},
        )
        assert result.outputs["y"].dtype == np.complex128
        assert np.allclose(result.outputs["y"], z * w + z)

    def test_complex_dft_via_reduction(self):
        # Direct DFT with a complex twiddle matrix equals np.fft.fft.
        n = 16
        k = np.arange(n)
        twiddle = np.exp(-2j * np.pi * np.outer(k, k) / n)
        signal = np.random.default_rng(0).normal(size=n) + 0j
        result = run(
            f"main(input complex W[{n}][{n}], input complex x[{n}],"
            f" output complex X[{n}]) {{"
            f" index i[0:{n-1}], j[0:{n-1}];"
            " X[j] = sum[i](W[j][i]*x[i]); }",
            inputs={"W": twiddle, "x": signal},
        )
        assert np.allclose(result.outputs["X"], np.fft.fft(signal.real))
