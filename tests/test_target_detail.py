"""Tests for the microarchitectural detail layers (DECO stages, VTA uops,
profiling, precision modes)."""

import numpy as np
import pytest

from repro.srdfg import Executor, build
from repro.targets import PolyMath, Vta, default_accelerators
from repro.targets.deco_stages import map_stages, map_statement
from repro.targets.vta_uops import (
    generate_gemm_stream,
    listing,
    stream_for_fragment,
)


def scalar_graph(source):
    graph = build(source)
    [node] = graph.compute_nodes()
    return graph, node


class TestDecoStages:
    def test_elementwise_chain_is_narrow_and_deep(self):
        # y = a*b + c -> two stages: mul level 0, add level 1 (per point).
        _, node = scalar_graph(
            "main(input float a[4], input float b[4], input float c[4],"
            " output float y[4]) { index i[0:3]; y[i] = a[i]*b[i] + c[i]; }"
        )
        stages = map_statement(node)
        assert stages.depth == 2
        assert stages.stage_widths == [4, 4]
        assert stages.imbalance == pytest.approx(1.0)

    def test_reduction_tree_narrows_per_stage(self):
        _, node = scalar_graph(
            "main(input float x[8], output float r) {"
            " index i[0:7]; r = sum[i](x[i]); }"
        )
        stages = map_statement(node)
        # Balanced combine tree: 4, 2, 1 combines.
        assert stages.stage_widths == [4, 2, 1]
        assert stages.imbalance > 1.0

    def test_matvec_first_stage_is_fattest(self):
        _, node = scalar_graph(
            "main(input float A[8][8], input float x[8], output float y[8]) {"
            " index i[0:7], j[0:7]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        stages = map_statement(node)
        assert stages.stage_widths[0] == 64  # all multiplies
        assert max(stages.stage_widths) == stages.stage_widths[0]
        assert stages.total_ops == 64 + 56

    def test_rebalance_factor_grows_with_imbalance(self):
        _, wide = scalar_graph(
            "main(input float A[8][8], input float x[8], output float y[8]) {"
            " index i[0:7], j[0:7]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        _, flat = scalar_graph(
            "main(input float a[8], input float b[8], output float y[8]) {"
            " index i[0:7]; y[i] = a[i] + b[i]; }"
        )
        wide_factor = map_statement(wide).rebalance_factor(dsp_blocks=32)
        flat_factor = map_statement(flat).rebalance_factor(dsp_blocks=32)
        assert wide_factor > flat_factor
        assert flat_factor == pytest.approx(1.0)

    def test_empty_graph(self):
        from repro.srdfg.graph import SrDFG

        stages = map_stages(SrDFG("empty"))
        assert stages.depth == 0
        assert stages.rebalance_factor(64) == 1.0


class TestVtaUops:
    def test_tile_counts(self):
        stream = generate_gemm_stream(free_size=64, reduce_size=64)
        assert stream.tiles == (4, 4)
        assert stream.count("gemm") == 16
        assert stream.count("load") == 32  # weight + input per gemm
        assert stream.count("store") == 4

    def test_ragged_sizes_round_up(self):
        stream = generate_gemm_stream(free_size=17, reduce_size=1)
        assert stream.tiles == (2, 1)

    def test_cycles_monotone_in_work(self):
        small = generate_gemm_stream(32, 32)
        big = generate_gemm_stream(256, 256)
        assert big.total_cycles > small.total_cycles
        assert big.overlapped_cycles <= big.total_cycles

    def test_stream_for_fragment_consistent_with_cost_model(self):
        source = (
            "main(input float A[256][256], input float x[256],"
            " output float y[256]) {"
            " index i[0:255], j[0:255]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        accelerator = Vta()
        compiler = PolyMath({"DL": accelerator}, run_pipeline=False)
        app = compiler.compile(source, domain="DL")
        fragment = next(
            f for f in app.programs["DL"].fragments if f.op == "matvec"
        )
        stream = stream_for_fragment(fragment)
        analytic_cycles = (
            accelerator.fragment_cost(fragment).seconds
            * accelerator.params.frequency_hz
        )
        # Two independent models of the same compute agree within 4x (the
        # stream's load/store side assumes streaming weights, which the
        # analytic model treats as resident, so only compute is compared).
        assert analytic_cycles / 4 < stream.compute_cycles < analytic_cycles * 4

    def test_listing_truncates(self):
        stream = generate_gemm_stream(256, 256)
        text = listing(stream, limit=12)
        assert "more ..." in text
        assert "gemm" in text


class TestProfileApi:
    def test_profile_sums_to_total(self, mpc_source):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(mpc_source, domain="RBT")
        rows, total = app.profile(top=100)
        assert total > 0
        assert sum(row[2] for row in rows) == pytest.approx(total)
        assert abs(sum(row[3] for row in rows) - 1.0) < 1e-9

    def test_profile_report_renders(self, mpc_source):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(mpc_source, domain="RBT")
        report = app.profile_report(top=5)
        assert "total accelerator time" in report
        assert "RBT" in report


class TestPrecisionModes:
    SOURCE = (
        "main(input float A[64][64], input float x[64], output float y[64]) {"
        " index i[0:63], j[0:63]; y[j] = sum[i](A[j][i]*x[i]); }"
    )

    def test_f32_outputs_are_float32(self):
        graph = build(self.SOURCE)
        rng = np.random.default_rng(0)
        result = Executor(graph, precision="f32").run(
            inputs={"A": rng.normal(size=(64, 64)), "x": rng.normal(size=64)}
        )
        assert result.outputs["y"].dtype == np.float32

    def test_f32_error_small_but_nonzero(self):
        graph = build(self.SOURCE)
        rng = np.random.default_rng(0)
        inputs = {"A": rng.normal(size=(64, 64)), "x": rng.normal(size=64)}
        high = Executor(graph).run(inputs=inputs).outputs["y"]
        low = Executor(graph, precision="f32").run(inputs=inputs).outputs["y"]
        error = np.max(np.abs(high - low))
        assert 0 < error < 1e-3

    def test_unknown_precision_rejected(self):
        from repro.errors import ExecutionError

        with pytest.raises(ExecutionError, match="precision"):
            Executor(build(self.SOURCE), precision="f16")

    def test_f32_propagates_into_components(self, mpc_source, mpc_data):
        graph = build(mpc_source, domain="RBT")
        result = Executor(graph, precision="f32").run(**mpc_data)
        assert result.outputs["ctrl_sgnl"].dtype == np.float32
