"""Tests for the plan/execute engine (repro.srdfg.plan).

Path-equivalence tests use integer-valued floats throughout: einsum
(BLAS), plain ``np.sum`` (pairwise), and chunked accumulation can differ
in the last ulp on arbitrary reals, but are exact on integers — so
``np.array_equal`` (bit-identity) is the right assertion, not allclose.
"""

import numpy as np
import pytest

from repro.driver import ArtifactCache, CompilerSession
from repro.errors import ExecutionError
from repro.srdfg import build
from repro.srdfg.interpreter import (
    DEFAULT_LATTICE_LIMIT,
    Executor,
    resolve_dtype,
)
from repro.srdfg.plan import (
    PLAN_STATS,
    PlanConfig,
    build_plan,
    graph_fingerprint,
    plan_cache_key,
    plan_for_graph,
)

MATVEC = (
    "main(input float A[6][5], input float x[5], output float y[6]) {"
    " index i[0:5], j[0:4];"
    " y[i] = sum[j](A[i][j] * x[j]); }"
)

STATEFUL = (
    "main(input float u[4], state float acc[4], output float y[4]) {"
    " index i[0:3];"
    " acc[i] = acc[i] + u[i];"
    " y[i] = 2.0 * acc[i]; }"
)


def matvec_data(rng=None):
    rng = rng or np.random.default_rng(11)
    a = rng.integers(-6, 7, size=(6, 5)).astype(np.float64)
    x = rng.integers(-6, 7, size=5).astype(np.float64)
    return {"A": a, "x": x}


class TestPlanConfig:
    def test_none_lattice_limit_normalises_to_default(self):
        assert PlanConfig(lattice_limit=None).lattice_limit == DEFAULT_LATTICE_LIMIT

    def test_unknown_precision_rejected(self):
        with pytest.raises(ExecutionError):
            PlanConfig(precision="f16")

    def test_hashable_for_memo_keys(self):
        assert PlanConfig() == PlanConfig()
        assert hash(PlanConfig()) == hash(PlanConfig())
        assert PlanConfig() != PlanConfig(precision="f32")


class TestResolveDtype:
    def test_float_follows_precision(self):
        assert resolve_dtype("float") is np.float64
        assert resolve_dtype("float", np.float32) is np.float32

    def test_non_float_ignores_precision(self):
        assert resolve_dtype("int", np.float32) is np.int64
        assert resolve_dtype("bin", np.float32) is np.int8
        assert resolve_dtype("complex", np.float32) is np.complex128

    def test_unknown_defaults_to_float64(self):
        assert resolve_dtype("mystery") is np.float64


class TestPathEquivalence:
    """The same statement down einsum, lattice, and chunked paths."""

    def test_three_paths_bit_identical(self):
        inputs = matvec_data()
        graphs = [build(MATVEC) for _ in range(3)]
        einsum_plan = build_plan(graphs[0])
        lattice_plan = build_plan(
            graphs[1], config=PlanConfig(enable_einsum=False)
        )
        chunked_plan = build_plan(
            graphs[2],
            config=PlanConfig(enable_einsum=False, lattice_limit=8),
        )

        # Each plan must actually have picked the intended path.
        assert [s.path() for s in einsum_plan.statements.values()] == ["einsum"]
        assert [s.path() for s in lattice_plan.statements.values()] == ["lattice"]
        assert [s.path() for s in chunked_plan.statements.values()] == ["chunked"]

        results = [
            plan.execute(inputs=inputs).outputs["y"]
            for plan in (einsum_plan, lattice_plan, chunked_plan)
        ]
        expected = inputs["A"] @ inputs["x"]
        for got in results:
            assert np.array_equal(got, expected)

    def test_executor_flags_reach_the_plan(self):
        graph = build(MATVEC)
        executor = Executor(graph, enable_einsum=False, lattice_limit=8)
        result = executor.run(inputs=matvec_data())
        assert [s.path() for s in executor.plan.statements.values()] == ["chunked"]
        data = matvec_data()
        assert np.array_equal(result.outputs["y"], data["A"] @ data["x"])


class TestPlanReuse:
    def test_reused_plan_matches_fresh_plans_across_stateful_steps(self):
        graph = build(STATEFUL)
        shared = build_plan(graph)
        rng = np.random.default_rng(5)
        drives = [
            rng.integers(-4, 5, size=4).astype(np.float64) for _ in range(12)
        ]

        state_a, state_b = {}, {}
        for u in drives:
            got = shared.execute(inputs={"u": u}, state=state_a)
            fresh = build_plan(build(STATEFUL)).execute(
                inputs={"u": u}, state=state_b
            )
            assert np.array_equal(got.outputs["y"], fresh.outputs["y"])
            assert np.array_equal(got.state["acc"], fresh.state["acc"])
            state_a, state_b = got.state, fresh.state

        assert shared.counters.executions == len(drives)
        for statement in shared.statements.values():
            assert statement.built == 1
            assert statement.executions == len(drives)

    def test_executors_over_one_graph_share_one_plan(self):
        graph = build(MATVEC)
        first = Executor(graph)
        second = Executor(graph)
        assert first.plan is second.plan
        # A different configuration gets its own plan.
        other = Executor(graph, precision="f32")
        assert other.plan is not first.plan

    def test_plan_builds_once_per_graph(self):
        graph = build(MATVEC)
        before = PLAN_STATS.snapshot()
        plan = plan_for_graph(graph)
        assert plan_for_graph(graph) is plan
        after = PLAN_STATS.snapshot()
        assert after.graphs_planned - before.graphs_planned == 1

    def test_custom_reductions_bypass_sharing(self):
        graph = build(MATVEC)
        shared = plan_for_graph(graph)
        source_with_reduction = "reduction both(a, b) = a + b; " + MATVEC
        custom_graph = build(source_with_reduction)
        custom = plan_for_graph(
            graph, reductions=getattr(custom_graph, "reductions", None)
        )
        assert custom is not shared


class TestCompiledApplicationCounters:
    """The issue's acceptance criterion, as a regression test."""

    def test_50_step_run_plans_once_executes_50_times(self):
        from repro.eval import Harness

        harness = Harness()
        workload, app, _ = harness.compiled("MobileRobot")
        plan = app.execution_plan()

        before = PLAN_STATS.snapshot()
        state = {
            key: np.asarray(value)
            for key, value in workload.initial_state().items()
        }
        previous = None
        for step in range(50):
            result, _, _ = app.run(
                inputs=workload.inputs(step, previous),
                params=workload.params(),
                state=state,
            )
            state = result.state
            previous = result
        after = PLAN_STATS.snapshot()

        # Nothing was planned during the steps (the plan pre-existed),
        # and every statement plan was built once and ran 50 times.
        assert after.statements_planned == before.statements_planned
        assert plan.plans_built == plan.statement_count
        for _, statement in plan.iter_statements():
            assert statement.built == 1
            assert statement.executions >= 50

    def test_app_run_matches_plain_executor(self):
        from repro.eval import Harness

        harness = Harness()
        workload, app, _ = harness.compiled("MobileRobot")
        state_a = {
            key: np.asarray(value)
            for key, value in workload.initial_state().items()
        }
        state_b = dict(state_a)
        executor = Executor(app.graph)
        previous = None
        for step in range(5):
            via_app, _, _ = app.run(
                inputs=workload.inputs(step, previous),
                params=workload.params(),
                state=state_a,
            )
            direct = executor.run(
                inputs=workload.inputs(step, previous),
                params=workload.params(),
                state=state_b,
            )
            for name in via_app.outputs:
                assert np.array_equal(via_app.outputs[name], direct.outputs[name])
            state_a, state_b = via_app.state, direct.state
            previous = via_app


class TestFingerprintAndCacheTier:
    def test_fingerprint_stable_across_rebuilds(self):
        assert graph_fingerprint(build(MATVEC)) == graph_fingerprint(build(MATVEC))

    def test_fingerprint_distinguishes_programs(self):
        assert graph_fingerprint(build(MATVEC)) != graph_fingerprint(build(STATEFUL))

    def test_cache_key_covers_config(self):
        graph = build(MATVEC)
        assert plan_cache_key(graph) != plan_cache_key(
            graph, PlanConfig(precision="f32")
        )

    def test_plan_tier_hits_across_graph_instances(self):
        cache = ArtifactCache()
        first = build(MATVEC)
        plan = plan_for_graph(first, registry=cache)
        assert cache.stats.plan_misses == 1
        assert cache.stats.plan_stores == 1

        # A structurally identical graph (fresh build, different node
        # uids) hits the tier and reuses the very same plan object.
        second = build(MATVEC)
        again = plan_for_graph(second, registry=cache)
        assert again is plan
        assert cache.stats.plan_hits == 1

        inputs = matvec_data()
        got = again.execute(inputs=inputs)
        assert np.array_equal(got.outputs["y"], inputs["A"] @ inputs["x"])

    def test_session_plan_for_replays_skip_planning(self):
        from repro.targets import default_accelerators

        session = CompilerSession(default_accelerators())
        source = (
            "main(input float A[6][5], input float x[5], output float y[6]) {"
            " index i[0:5], j[0:4];"
            " y[i] = sum[j](A[i][j] * x[j]); }"
        )
        app = session.compile(source, domain="DA")
        plan = session.plan_for(app)
        assert session.cache.stats.plan_misses == 1
        assert session.plan_for(app) is plan
        assert session.cache.stats.plan_hits == 1
        # The plan stage shows up in the record stream, hit marked cached.
        plan_records = [r for r in session.records if r.stage == "plan"]
        assert len(plan_records) == 2
        assert [r.cached for r in plan_records] == [False, True]
        assert "plan" in session.stats_report()


class TestPrecisionThreading:
    def test_host_fallback_honours_precision(self):
        """DA-crash fallback at f32 is bit-identical to a plain f32 run."""
        from repro.eval import Harness
        from repro.runtime import FaultPlan, HostManager, RecoveryPolicy

        harness = Harness()
        workload, app, accelerators = harness.compiled("BrainStimul")
        manager = HostManager(
            accelerators, policy=RecoveryPolicy(max_attempts=2)
        )

        def drive(precision, fault_plan):
            active = fault_plan.activate()
            state = {
                key: np.asarray(value)
                for key, value in workload.initial_state().items()
            }
            previous = None
            reports = []
            for step in range(2):
                report = manager.run(
                    app,
                    inputs=workload.inputs(step, previous),
                    params=workload.params(),
                    state=state,
                    fault_plan=active,
                    hints=workload.hints(),
                    precision=precision,
                )
                reports.append(report)
                previous = report.result
                state = report.result.state
            return reports

        faulty_reports = drive("f32", FaultPlan.parse(["crash@DA"], seed=7))
        # The crash really degraded DA on some step of the faulty run.
        assert any(report.degraded_domains for report in faulty_reports)
        faulty = faulty_reports[-1]
        clean = drive("f32", FaultPlan(seed=7))[-1]
        for name in faulty.result.outputs:
            assert np.array_equal(
                faulty.result.outputs[name], clean.result.outputs[name]
            )
            # And f32 really is a different numeric mode than f64.
            assert faulty.result.outputs[name].dtype == np.float32

    def test_f32_rounds_at_statement_boundaries(self):
        graph = build(MATVEC)
        rng = np.random.default_rng(3)
        inputs = {
            "A": rng.standard_normal((6, 5)),
            "x": rng.standard_normal(5),
        }
        f64 = Executor(graph).run(inputs=inputs).outputs["y"]
        f32 = Executor(graph, precision="f32").run(inputs=inputs).outputs["y"]
        assert f64.dtype == np.float64
        assert f32.dtype == np.float32
        assert not np.array_equal(f64, f32.astype(np.float64))


class TestTraceCompatibility:
    def test_trace_one_record_per_node(self):
        graph = build(MATVEC)
        trace = []
        Executor(graph).run(inputs=matvec_data(), trace=trace)
        assert len(trace) == len(graph.nodes)
        compute = [r for r in trace if r["kind"] == "compute"]
        assert compute and compute[0]["produced"]["y"][0] == (6,)
