"""Tests for the instrumented compilation driver (`repro.driver`)."""

import pytest

from repro.driver import (
    CACHE_HIT_STAGE,
    STAGES,
    ArtifactCache,
    CompilerSession,
    Diagnostics,
    StageRecord,
    accelerator_fingerprint,
    fingerprint,
)
from repro.driver.diagnostics import Diagnostic
from repro.errors import PMLangSyntaxError, TargetError
from repro.passes import default_pipeline
from repro.targets import PolyMath, Robox, Tabla, default_accelerators


@pytest.fixture()
def session():
    return CompilerSession(default_accelerators())


class TestStageRecords:
    def test_cold_compile_runs_every_stage_once(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT")
        executions = session.stage_executions()
        for stage in STAGES:
            assert executions[stage] == 1, stage
        assert CACHE_HIT_STAGE not in executions

    def test_per_pass_records_nest_under_optimize(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT")
        names = {r.stage for r in session.records}
        for expected in ("optimize/constant-folding", "optimize/cse",
                         "optimize/dead-code-elimination"):
            assert expected in names

    def test_build_stage_reports_graph_growth(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT")
        [build] = [r for r in session.records if r.stage == "srdfg-build"]
        assert build.nodes_before == 0 and build.edges_before == 0
        assert build.node_delta > 0 and build.edge_delta > 0
        assert build.seconds >= 0.0

    def test_deltas_are_recursive(self, session, mpc_source):
        """The MPC program nests component subgraphs; stage records must
        count them, not just the top level."""
        app = session.compile(mpc_source, domain="RBT")
        [build] = [r for r in session.records if r.stage == "srdfg-build"]
        top_level = len(app.source_graph.nodes)
        assert build.nodes_after > top_level

    def test_stage_hooks_see_every_record(self, session, mpc_source):
        seen = []
        assert session.add_stage_hook(seen.append) is session
        session.compile(mpc_source, domain="RBT")
        assert seen == session.records
        with pytest.raises(TypeError):
            session.add_stage_hook("not-callable")

    def test_record_render_mentions_stage_and_time(self):
        record = StageRecord(stage="parse", seconds=0.25, detail="2 component(s)")
        text = record.render()
        assert "parse" in text and "ms" in text and "2 component(s)" in text


class TestArtifactCache:
    def test_second_compile_is_a_cache_hit(self, session, mpc_source):
        """Acceptance criterion: zero re-parses / re-builds on a repeat."""
        first = session.compile(mpc_source, domain="RBT")
        second = session.compile(mpc_source, domain="RBT")
        assert first.programs is second.programs
        assert session.stage_executions("parse") == 1
        assert session.stage_executions("srdfg-build") == 1
        assert session.stage_executions(CACHE_HIT_STAGE) == 1
        assert session.cache.stats.hits == 1
        assert session.cache.stats.misses == 1

    def test_different_domain_misses(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT")
        session.compile(mpc_source, domain=None)
        assert session.cache.stats.misses == 2
        assert session.cache.stats.hits == 0

    def test_pipeline_fingerprint_in_key(self, mpc_source):
        plain = CompilerSession(default_accelerators())
        unoptimized = CompilerSession(default_accelerators(), run_pipeline=False)
        key = plain.cache_key(mpc_source, "main", "RBT", None,
                              plain.accelerators, default_pipeline())
        key_no_pipeline = unoptimized.cache_key(mpc_source, "main", "RBT", None,
                                                unoptimized.accelerators, None)
        assert key != key_no_pipeline

    def test_accelerator_fingerprint_tracks_configuration(self):
        import dataclasses

        stock = Robox()
        tuned = Robox()
        tuned.params = dataclasses.replace(tuned.params, frequency_hz=2e9)
        assert accelerator_fingerprint({"RBT": stock}) != accelerator_fingerprint(
            {"RBT": tuned}
        )
        assert accelerator_fingerprint({"RBT": Robox()}) == accelerator_fingerprint(
            {"RBT": Robox()}
        )

    def test_hints_do_not_change_the_key(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT", data_hints={"iterations": 10})
        session.compile(mpc_source, domain="RBT", data_hints={"iterations": 99})
        assert session.cache.stats.hits == 1

    def test_disk_tier_survives_sessions(self, tmp_path, mpc_source):
        cache_dir = str(tmp_path / "artifacts")
        warm = CompilerSession(default_accelerators(), cache_dir=cache_dir)
        warm.compile(mpc_source, domain="RBT")

        cold = CompilerSession(default_accelerators(), cache_dir=cache_dir)
        app = cold.compile(mpc_source, domain="RBT")
        assert cold.stage_executions("parse") == 0
        assert cold.cache.stats.disk_hits == 1
        assert "RBT" in app.programs

    def test_unpicklable_artifact_degrades_to_memory(self, tmp_path):
        cache = ArtifactCache(cache_dir=str(tmp_path / "c"))
        assert cache.put("key", lambda: None) is False
        assert cache.stats.disk_errors == 1
        assert cache.get("key") is not None  # memory tier still serves it

    def test_fingerprint_is_stable_and_order_sensitive(self):
        assert fingerprint("a", "b") == fingerprint("a", "b")
        assert fingerprint("a", "b") != fingerprint("b", "a")

    def test_corrupt_disk_entry_is_a_miss_and_is_evicted(self, tmp_path):
        cache_dir = tmp_path / "c"
        cache = ArtifactCache(cache_dir=str(cache_dir), diagnostics=Diagnostics())
        cache.put("key", {"payload": 1})
        cache._memory.clear()  # force the disk tier

        entry = cache_dir / "key.pkl"
        entry.write_bytes(b"\x80garbage-not-a-pickle\xff")
        assert cache.get("key") is None  # never raises
        assert cache.stats.disk_errors == 1
        assert cache.stats.misses == 1
        assert not entry.exists()  # evicted
        assert any("corrupt" in d.message for d in cache.diagnostics.warnings)

    def test_truncated_disk_entry_is_a_miss(self, tmp_path):
        cache_dir = tmp_path / "c"
        cache = ArtifactCache(cache_dir=str(cache_dir))
        cache.put("key", list(range(1000)))
        payload = (cache_dir / "key.pkl").read_bytes()
        (cache_dir / "key.pkl").write_bytes(payload[: len(payload) // 2])
        cache._memory.clear()

        assert cache.get("key") is None
        assert cache.stats.disk_errors == 1

    def test_corrupt_entry_recompiles_through_session(self, tmp_path, mpc_source):
        cache_dir = tmp_path / "artifacts"
        warm = CompilerSession(default_accelerators(), cache_dir=str(cache_dir))
        warm.compile(mpc_source, domain="RBT")
        for entry in cache_dir.glob("*.pkl"):
            entry.write_bytes(b"not a pickle at all")

        cold = CompilerSession(default_accelerators(), cache_dir=str(cache_dir))
        app = cold.compile(mpc_source, domain="RBT")  # recompiles, no raise
        assert "RBT" in app.programs
        assert cold.stage_executions("parse") == 1
        assert cold.cache.stats.disk_errors == 1
        assert any(
            "corrupt" in d.message for d in cold.diagnostics.warnings
        )


class TestHintBinding:
    def test_session_accelerators_never_mutated(self, session, mpc_source):
        shared = session.accelerators["RBT"]
        before = dict(shared.data_hints)
        app = session.compile(mpc_source, domain="RBT", data_hints={"edges": 123})
        assert shared.data_hints == before
        assert app.accelerators["RBT"].data_hints["edges"] == 123
        assert app.accelerators["RBT"] is not shared

    def test_cached_artifact_rebinds_per_compile(self, session, mpc_source):
        first = session.compile(mpc_source, domain="RBT", data_hints={"n": 1})
        second = session.compile(mpc_source, domain="RBT", data_hints={"n": 2})
        assert first.accelerators["RBT"].data_hints["n"] == 1
        assert second.accelerators["RBT"].data_hints["n"] == 2
        assert first.programs is second.programs

    def test_no_hints_returns_artifact_unchanged(self, session, mpc_source):
        first = session.compile(mpc_source, domain="RBT")
        second = session.compile(mpc_source, domain="RBT")
        assert first is second


class TestDiagnostics:
    def test_syntax_error_is_recorded_with_location(self, session):
        with pytest.raises(PMLangSyntaxError):
            session.compile("main( {", domain="RBT")
        assert session.diagnostics.has_errors
        [error] = session.diagnostics.errors
        assert error.stage == "parse"
        assert error.line is not None
        [parse] = [r for r in session.records if r.stage == "parse"]
        assert parse.detail == "failed"

    def test_scalar_fallback_warns(self, session):
        source = (
            "main(input float x[8], output float y[8]) {"
            " index i[0:7]; y[i] = x[i] * 2.0; }"
        )
        session.compile(source)
        assert any(
            "scalar" in w.message and w.stage == "lower"
            for w in session.diagnostics.warnings
        )

    def test_engine_orders_and_counts(self):
        diags = Diagnostics()
        diags.note("first")
        diags.warning("second", stage="lower")
        diags.error("third", stage="parse", line=3, column=7)
        assert len(diags) == 3
        assert [d.severity for d in diags] == ["note", "warning", "error"]
        assert diags.counts() == {"note": 1, "warning": 1, "error": 1}
        rendered = diags.render()
        assert "error [parse]: third at line 3, col 7" in rendered
        with pytest.raises(ValueError):
            diags.emit("fatal", "nope")

    def test_diagnostic_render_without_location(self):
        assert Diagnostic("note", "hello").render() == "note: hello"


class TestStatsReport:
    def test_report_covers_stages_cache_and_diagnostics(self, session, mpc_source):
        session.compile(mpc_source, domain="RBT")
        session.compile(mpc_source, domain="RBT")
        report = session.stats_report()
        assert "2 compile(s)" in report
        for stage in STAGES + (CACHE_HIT_STAGE,):
            assert stage in report
        assert "optimize/constant-folding" in report
        assert "1 hit(s) / 1 miss(es)" in report
        assert "diagnostics:" in report
        # Sub-stages print directly under their parent stage.
        lines = report.splitlines()
        optimize_at = next(i for i, line in enumerate(lines)
                           if line.startswith("optimize "))
        assert lines[optimize_at + 1].startswith("optimize/")


class TestPolyMathFacade:
    def test_compile_goes_through_the_session(self, mpc_source):
        compiler = PolyMath(default_accelerators())
        app = compiler.compile(mpc_source, domain="RBT")
        assert "RBT" in app.programs
        assert compiler.session.compiles == 1
        compiler.compile(mpc_source, domain="RBT")
        assert compiler.session.cache.stats.hits == 1
        assert compiler.diagnostics is compiler.session.diagnostics

    def test_facade_accepts_an_existing_session(self, mpc_source):
        session = CompilerSession(default_accelerators())
        compiler = PolyMath(default_accelerators(), session=session)
        assert compiler.session is session

    def test_no_accelerators_is_a_target_error(self, mpc_source):
        with pytest.raises(TargetError):
            CompilerSession().compile(mpc_source, domain="RBT")


class TestAcceleratorBinding:
    def test_bound_copies_do_not_share_hints(self):
        accelerator = Tabla()
        bound = accelerator.bound({"rows": 4})
        assert bound is not accelerator
        assert bound.data_hints == {"rows": 4}
        assert "rows" not in accelerator.data_hints
        bound.data_hints["cols"] = 8
        assert "cols" not in accelerator.data_hints

    def test_bound_preserves_base_hints(self):
        accelerator = Tabla()
        accelerator.data_hints["base"] = 1
        bound = accelerator.bound({"extra": 2})
        assert bound.data_hints == {"base": 1, "extra": 2}
