"""Tests for the kernel codegen tier (repro.codegen).

The contract under test: a generated kernel is *bit-identical* to the
interpreted ExecutionPlan at f64 — it either replays the interpreter's
exact numpy op sequence with build-time-folded index arithmetic, or
falls back per-statement to the interpreter's own StatementPlan — and
codegen failure at any level (build decline, runtime fallback, corrupt
cache entry) is a counted diagnostic, never an error.

Equivalence tests use integer-valued floats so bit-identity assertions
(``np.array_equal``) also hold at f32, where the plan rounds at
statement boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codegen import (
    CODEGEN_STATS,
    build_kernel,
    kernel_cache_key,
)
from repro.driver import CompilerSession
from repro.targets import default_accelerators
from repro.driver.cache import ArtifactCache
from repro.driver.diagnostics import Diagnostics

MATVEC = (
    "main(input float A[6][5], input float x[5], output float y[6]) {"
    " index i[0:5], j[0:4];"
    " y[i] = sum[j](A[i][j] * x[j]); }"
)

STATEFUL = (
    "main(input float u[4], state float acc[4], output float y[4]) {"
    " index i[0:3];"
    " acc[i] = acc[i] + u[i];"
    " y[i] = 2.0 * acc[i]; }"
)

#: Predicated reduction (the guarded-stencil idiom): the write into
#: ``y[i]`` is masked by the ``i + j < 8`` predicate.
PREDICATED = (
    "main(input float w[3], input float x[8], output float y[8]) {"
    " index i[0:7], j[0:2];"
    " y[i] = sum[j: i + j < 8](w[j] * x[i + j]); }"
)


def _int_floats(rng, shape, dtype=np.float64):
    return rng.integers(-6, 7, size=shape).astype(dtype)


def _compile_plan(source, codegen=True, **plan_kwargs):
    session = CompilerSession(default_accelerators())
    app = session.compile(source, domain="DA")
    plan = session.plan_for(app, codegen=codegen, **plan_kwargs)
    return session, plan


def _assert_identical(ref, got):
    assert set(ref.outputs) == set(got.outputs)
    for key in ref.outputs:
        a, b = ref.outputs[key], got.outputs[key]
        assert a.dtype == b.dtype, key
        assert a.shape == b.shape, key
        assert np.array_equal(a, b, equal_nan=True), key
    assert set(ref.state) == set(got.state)
    for key in ref.state:
        assert np.array_equal(ref.state[key], got.state[key],
                              equal_nan=True), key


class TestKernelEquivalence:
    def test_matvec_bit_identical(self):
        session, plan = _compile_plan(MATVEC)
        assert plan.kernel is not None
        rng = np.random.default_rng(3)
        inputs = {"A": _int_floats(rng, (6, 5)), "x": _int_floats(rng, 5)}
        ref = plan._execute(inputs, {}, {}, {}, None)
        got = plan.kernel.try_execute(plan, inputs)
        assert got is not None
        _assert_identical(ref, got)

    def test_chunked_statement_bit_identical(self):
        """A lattice_limit small enough to force the interpreter's
        chunked accumulation path must not diverge from the kernel."""
        session, plan = _compile_plan(MATVEC, lattice_limit=8)
        assert plan.kernel is not None
        rng = np.random.default_rng(5)
        inputs = {"A": _int_floats(rng, (6, 5)), "x": _int_floats(rng, 5)}
        ref = plan._execute(inputs, {}, {}, {}, None)
        got = plan.kernel.try_execute(plan, inputs)
        assert got is not None
        _assert_identical(ref, got)

    def test_predicated_write_bit_identical(self):
        session, plan = _compile_plan(PREDICATED)
        assert plan.kernel is not None
        rng = np.random.default_rng(7)
        inputs = {"w": _int_floats(rng, 3), "x": _int_floats(rng, 8)}
        ref = plan._execute(inputs, {}, {}, {}, None)
        got = plan.kernel.try_execute(plan, inputs)
        assert got is not None
        _assert_identical(ref, got)

    def test_f32_precision_threaded(self):
        """f32 plans generate f32 kernels: same dtypes, same values on
        integer-valued data (exact at f32)."""
        session, plan = _compile_plan(MATVEC, precision="f32")
        assert plan.kernel is not None
        rng = np.random.default_rng(9)
        inputs = {
            "A": _int_floats(rng, (6, 5), np.float32),
            "x": _int_floats(rng, 5, np.float32),
        }
        ref = plan._execute(inputs, {}, {}, {}, None)
        got = plan.kernel.try_execute(plan, inputs)
        assert got is not None
        assert got.outputs["y"].dtype == np.float32
        _assert_identical(ref, got)

    def test_stateful_session_50_steps_one_build(self):
        """50 stateful steps re-using one pinned plan build exactly one
        kernel (CODEGEN_STATS.kernels_built), and the kernel-tier state
        thread is bit-identical to the interpreter's."""
        base = CODEGEN_STATS.to_dict()
        session = CompilerSession(default_accelerators())
        app = session.compile(STATEFUL, domain="DA")
        rng = np.random.default_rng(11)
        ref_state = {"acc": np.zeros(4)}
        kern_state = {"acc": np.zeros(4)}
        plan = None
        for step in range(50):
            # plan_for every step, like a serving session would: the
            # cache returns the same plan with its kernel still attached.
            plan = session.plan_for(app, codegen=True)
            assert plan.kernel is not None
            u = {"u": _int_floats(rng, 4)}
            ref = plan._execute(u, {}, ref_state, {}, None)
            got = plan.execute(u, params={}, state=kern_state)
            _assert_identical(ref, got)
            ref_state, kern_state = ref.state, got.state
        stats = CODEGEN_STATS.to_dict()
        assert stats["kernels_built"] - base["kernels_built"] == 1
        assert stats["kernel_fallbacks"] == base["kernel_fallbacks"]

    def test_plan_execute_prefers_kernel(self):
        session, plan = _compile_plan(STATEFUL)
        base = CODEGEN_STATS.to_dict()
        result = plan.execute({"u": np.ones(4)}, state={"acc": np.zeros(4)})
        assert np.array_equal(result.outputs["y"], 2.0 * np.ones(4))
        stats = CODEGEN_STATS.to_dict()
        assert stats["kernel_executions"] - base["kernel_executions"] == 1

    def test_traced_execution_skips_kernel(self):
        """A traced run (per-statement observation) must use the
        interpreter even when a kernel is attached."""
        session, plan = _compile_plan(MATVEC)
        assert plan.kernel is not None
        base = CODEGEN_STATS.to_dict()
        rng = np.random.default_rng(13)
        inputs = {"A": _int_floats(rng, (6, 5)), "x": _int_floats(rng, 5)}
        trace = []
        plan.execute(inputs, trace=trace)
        assert trace, "trace list should receive per-step records"
        stats = CODEGEN_STATS.to_dict()
        assert stats["kernel_executions"] == base["kernel_executions"]


class TestBuildContract:
    def test_build_never_raises_and_counts_decline(self):
        class Hostile:
            graph_name = "hostile"
            steps = property(lambda self: (_ for _ in ()).throw(
                RuntimeError("boom")))

        base = CODEGEN_STATS.to_dict()
        diagnostics = Diagnostics()
        assert build_kernel(Hostile(), diagnostics=diagnostics) is None
        stats = CODEGEN_STATS.to_dict()
        assert stats["builds_declined"] - base["builds_declined"] == 1
        assert any(
            "codegen declined" in entry.message
            for entry in diagnostics.entries
        )

    def test_codegen_stage_recorded(self):
        session, plan = _compile_plan(MATVEC)
        assert session.stage_executions("codegen") == 1
        stats = session.stats_dict()
        assert "codegen" in stats
        assert stats["cache"]["kernel_stores"] == 1

    def test_codegen_off_by_default(self):
        session, plan = _compile_plan(MATVEC, codegen=False)
        assert plan.kernel is None


class TestKernelCache:
    def test_disk_round_trip_recompiles_source(self, tmp_path):
        session, plan = _compile_plan(MATVEC)
        artifact = plan.kernel
        cache = ArtifactCache(cache_dir=str(tmp_path))
        key = kernel_cache_key("k1")
        cache.kernel_put(key, artifact)
        cache._kernels.clear()
        loaded = cache.kernel_get(key)
        assert loaded is not None
        assert loaded.source == artifact.source
        assert cache.stats.kernel_disk_hits == 1
        rng = np.random.default_rng(17)
        inputs = {"A": _int_floats(rng, (6, 5)), "x": _int_floats(rng, 5)}
        ref = plan._execute(inputs, {}, {}, {}, None)
        outputs, _ = loaded.run(inputs)
        assert np.array_equal(ref.outputs["y"], outputs["y"])

    def test_corrupt_pickle_evicted_not_raised(self, tmp_path):
        diagnostics = Diagnostics()
        cache = ArtifactCache(cache_dir=str(tmp_path),
                              diagnostics=diagnostics)
        key = kernel_cache_key("k2")
        cache._path(key).write_bytes(b"\x80garbage")
        assert cache.kernel_get(key) is None
        assert not cache._path(key).exists()
        assert cache.stats.disk_errors == 1
        assert any(
            "corrupt kernel" in entry.message
            for entry in diagnostics.entries
        )

    def test_corrupt_source_record_evicted_not_raised(self, tmp_path):
        """A record that unpickles but holds uncompilable source is the
        stale-artifact case: evicted with a diagnostic, counted a miss,
        never a raise."""
        import pickle

        diagnostics = Diagnostics()
        cache = ArtifactCache(cache_dir=str(tmp_path),
                              diagnostics=diagnostics)
        key = kernel_cache_key("k3")
        record = {
            "plan_key": "k3",
            "source": "def _kernel(:  # truncated mid-write",
            "constants": {},
            "scratch_specs": [],
            "report": {},
        }
        cache._path(key).write_bytes(pickle.dumps(record))
        assert cache.kernel_get(key) is None
        assert not cache._path(key).exists()
        assert any(
            "corrupt kernel source" in entry.message
            for entry in diagnostics.entries
        )
        # Still a functioning cache afterwards.
        assert cache.kernel_get(key) is None

    def test_evict_plan_evicts_sibling_kernel(self, tmp_path):
        session, plan = _compile_plan(MATVEC)
        cache = ArtifactCache(cache_dir=str(tmp_path))
        plan_key = "plan-xyz"
        cache.plan_put(plan_key, plan)
        cache.kernel_put(kernel_cache_key(plan_key), plan.kernel)
        assert cache._path(kernel_cache_key(plan_key)).exists()
        assert cache.evict_plan(plan_key)
        assert cache.plan_get(plan_key) is None
        assert kernel_cache_key(plan_key) not in cache._kernels
        assert not cache._path(kernel_cache_key(plan_key)).exists()
        assert cache.stats.kernel_evictions == 1

    def test_second_session_hits_kernel_disk_tier(self, tmp_path):
        first = CompilerSession(default_accelerators(), cache_dir=str(tmp_path))
        app = first.compile(MATVEC, domain="DA")
        plan = first.plan_for(app, codegen=True)
        assert plan.kernel is not None

        second = CompilerSession(default_accelerators(), cache_dir=str(tmp_path))
        app2 = second.compile(MATVEC, domain="DA")
        plan2 = second.plan_for(app2, codegen=True)
        assert plan2.kernel is not None
        assert second.cache.stats.kernel_disk_hits == 1
        assert plan2.kernel.source == plan.kernel.source


class TestServeIntegration:
    def test_request_provenance_gains_kernel(self):
        from repro.serve import Request, Server

        with Server(workers=2, queue_capacity=8, codegen=True) as server:
            ticket = server.submit(Request(workload="MobileRobot", steps=2))
            response = ticket.wait(timeout=120)
        assert response.ok
        assert response.metrics.kernel_provenance == "kernel"
        report = server.report()
        assert report.provenance["execute"]["kernel"] >= 1

    def test_metrics_registry_exposes_codegen(self):
        from repro.serve import Server

        with Server(workers=1, queue_capacity=4) as server:
            registry = server.metrics_registry()
        assert "codegen" in registry.sources()


class TestFuzzOracle:
    def test_codegen_oracle_registered(self):
        from repro.fuzz import ORACLES

        assert "codegen" in ORACLES

    def test_codegen_oracle_runs_and_builds(self):
        from repro.fuzz import run_fuzz

        base = CODEGEN_STATS.to_dict()
        report = run_fuzz(programs=2, seed=1, campaigns="none",
                          minimize=False, dim_variants=2)
        assert report.ok, report.render()
        oracle_checks = [
            check
            for row in report.matrix
            for check in row["checks"]
            if check["oracle"] == "codegen"
        ]
        # 2 seeds x 2 variants x 2 precisions.
        assert len(oracle_checks) == 8
        assert all(check["ok"] for check in oracle_checks)
        stats = CODEGEN_STATS.to_dict()
        assert stats["kernels_built"] > base["kernels_built"]


class TestCli:
    def test_codegen_compare_json(self, capsys):
        from repro.cli import main

        code = main([
            "codegen", "--workload", "MobileRobot", "--compare",
            "--steps", "2", "--json", "-",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "bit-identical" in out
        import json

        payload = json.loads(out[out.index("{"):])
        entry = payload["workloads"]["MobileRobot"]
        assert entry["provenance"] == "kernel"
        assert entry["identical"] is True
