"""Unit tests for the srDFG data structure itself."""

import pytest

from repro.errors import GraphError
from repro.srdfg.graph import COMPUTE, VAR, Node, SrDFG
from repro.srdfg.metadata import EdgeMeta, VarInfo


def make_node(name, kind=COMPUTE, **attrs):
    base_attrs = {"writes": (name,)} if kind == COMPUTE else {}
    base_attrs.update(attrs)
    return Node(name=name, kind=kind, attrs=base_attrs)


def meta(name, **kwargs):
    return EdgeMeta(name=name, **kwargs)


class TestConstruction:
    def test_add_and_lookup(self):
        graph = SrDFG("g")
        node = graph.add_node(make_node("a"))
        assert graph.node_by_uid(node.uid) is node

    def test_duplicate_node_rejected(self):
        graph = SrDFG("g")
        node = graph.add_node(make_node("a"))
        with pytest.raises(GraphError):
            graph.add_node(node)

    def test_edge_requires_membership(self):
        graph = SrDFG("g")
        inside = graph.add_node(make_node("a"))
        outside = make_node("b")
        with pytest.raises(GraphError):
            graph.add_edge(inside, outside, meta("v"))

    def test_remove_node_removes_edges(self):
        graph = SrDFG("g")
        a = graph.add_node(make_node("a"))
        b = graph.add_node(make_node("b"))
        graph.add_edge(a, b, meta("v"))
        graph.remove_node(a)
        assert graph.edges == []
        assert [node.name for node in graph.nodes] == ["b"]

    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            Node(name="x", kind="bogus")


class TestTopologicalOrder:
    def test_respects_edges(self):
        graph = SrDFG("g")
        a = graph.add_node(make_node("a"))
        b = graph.add_node(make_node("b"))
        c = graph.add_node(make_node("c"))
        graph.add_edge(a, b, meta("v"))
        graph.add_edge(b, c, meta("w"))
        order = [node.name for node in graph.topological_order()]
        assert order.index("a") < order.index("b") < order.index("c")

    def test_cycle_detected(self):
        graph = SrDFG("g")
        a = graph.add_node(make_node("a"))
        b = graph.add_node(make_node("b"))
        graph.add_edge(a, b, meta("v"))
        graph.add_edge(b, a, meta("w"))
        with pytest.raises(GraphError, match="cycle"):
            graph.topological_order()

    def test_state_self_edge_not_a_cycle(self):
        graph = SrDFG("g")
        state = graph.add_node(
            Node(name="s", kind=VAR, attrs={"modifier": "state"})
        )
        graph.add_edge(state, state, meta("s", modifier="state"))
        assert graph.topological_order() == [state]

    def test_writeback_to_var_not_a_cycle(self):
        # reader <- var, writer -> var must not deadlock ordering.
        graph = SrDFG("g")
        var = graph.add_node(Node(name="v", kind=VAR, attrs={"modifier": "output"}))
        reader = graph.add_node(make_node("reader"))
        writer = graph.add_node(make_node("writer"))
        graph.add_edge(var, reader, meta("v"))
        graph.add_edge(reader, writer, meta("t"))
        graph.add_edge(writer, var, meta("v", modifier="output"))
        order = [node.name for node in graph.topological_order()]
        assert order.index("reader") < order.index("writer")


class TestRecursionHelpers:
    def test_walk_yields_all_levels(self):
        inner = SrDFG("inner")
        inner.add_node(make_node("leaf"))
        graph = SrDFG("outer")
        graph.add_node(
            Node(name="comp", kind="component", subgraph=inner, attrs={"writes": ("x",)})
        )
        entries = list(graph.walk())
        assert [(depth, node.name) for depth, node in entries] == [
            (0, "comp"),
            (1, "leaf"),
        ]

    def test_depth(self):
        level2 = SrDFG("l2")
        level2.add_node(make_node("x"))
        level1 = SrDFG("l1")
        level1.add_node(
            Node(name="c2", kind="component", subgraph=level2, attrs={"writes": ("x",)})
        )
        top = SrDFG("l0")
        top.add_node(
            Node(name="c1", kind="component", subgraph=level1, attrs={"writes": ("x",)})
        )
        assert top.depth() == 2

    def test_stats_counts(self):
        graph = SrDFG("g")
        graph.add_node(make_node("a"))
        graph.add_node(Node(name="v", kind=VAR, attrs={"modifier": "input"}))
        stats = graph.stats()
        assert stats["by_kind"] == {"compute": 1, "var": 1}
        assert stats["all_nodes"] == 2


class TestValidation:
    def test_dangling_compute_rejected(self):
        graph = SrDFG("g")
        graph.add_node(Node(name="dead", kind=COMPUTE, attrs={}))
        with pytest.raises(GraphError, match="produces nothing"):
            graph.validate()

    def test_valid_graph_passes(self):
        graph = SrDFG("g")
        var = graph.add_node(Node(name="y", kind=VAR, attrs={"modifier": "output"}))
        node = graph.add_node(make_node("op"))
        graph.add_edge(node, var, meta("y", modifier="output"))
        assert graph.validate()


class TestEdgeMeta:
    def test_nbytes(self):
        assert meta("x", dtype="float", shape=(4, 4)).nbytes == 64
        assert meta("x", dtype="complex", shape=(2,)).nbytes == 16

    def test_invalid_modifier_rejected(self):
        with pytest.raises(ValueError):
            EdgeMeta(name="x", modifier="bogus")

    def test_producer_name_defaults_to_name(self):
        m = meta("x")
        assert m.producer_name == "x"
        assert m.with_src_name("y").producer_name == "y"

    def test_describe(self):
        m = meta("w", dtype="float", modifier="state", shape=(3, 2))
        assert m.describe() == "state float w[3][2]"

    def test_varinfo_meta(self):
        info = VarInfo(name="v", dtype="int", modifier="param", shape=(5,))
        assert info.meta().modifier == "param"
        assert info.meta("local").modifier == "local"
