"""Every shipped example must run end-to-end without errors."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_at_least_five_examples_ship():
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_quickstart_reports_programs():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "DSP program on deco" in completed.stdout
    assert "DA program on tabla" in completed.stdout
    assert "estimated runtime" in completed.stdout
