"""Integration tests: every Table III/IV workload validates functionally."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    END_TO_END,
    SINGLE_DOMAIN,
    count_loc,
    get_workload,
    workload_names,
)

#: Fast workloads checked individually; the heavyweights run in one
#: parametrised sweep marked for clarity.
FAST = [
    "MobileRobot",
    "Hexacopter",
    "Wiki-BFS",
    "MovieL-100K",
    "ElecUse",
    "FFT-8192",
    "ResNet-18",
    "MobileNet",
    "BrainStimul",
    "OptionPricing",
]
HEAVY = sorted(set(SINGLE_DOMAIN + END_TO_END) - set(FAST))


class TestRegistry:
    def test_all_table_iii_workloads_registered(self):
        assert set(SINGLE_DOMAIN) <= set(workload_names())

    def test_all_table_iv_workloads_registered(self):
        assert set(END_TO_END) <= set(workload_names())

    def test_unknown_name_raises(self):
        with pytest.raises(WorkloadError):
            get_workload("Quicksort")

    def test_count_loc_skips_comments_and_blanks(self):
        assert count_loc("// c\n\n a = 1;\n # py\n") == 1

    @pytest.mark.parametrize("name", SINGLE_DOMAIN + END_TO_END)
    def test_metadata_present(self, name):
        workload = get_workload(name)
        assert workload.domain in ("RBT", "GA", "DA", "DSP", "DL")
        assert workload.algorithm
        assert workload.config
        assert workload.pmlang_loc > 0
        assert workload.perf_iterations >= 1


@pytest.mark.parametrize("name", FAST)
def test_functional_fast(name):
    workload = get_workload(name)
    check = workload.check_functional()
    assert check.ok, f"{name}: max rel err {check.error} {check.detail}"


@pytest.mark.parametrize("name", HEAVY)
def test_functional_heavy(name):
    workload = get_workload(name)
    check = workload.check_functional()
    assert check.ok, f"{name}: max rel err {check.error} {check.detail}"


class TestGraphWorkloadDetails:
    def test_hints_expose_sparsity(self):
        workload = get_workload("Twitter-BFS")
        hints = workload.hints()
        assert hints["edges"] < hints["vertices"] ** 2
        assert 0 < hints["op_scale"] < 1

    def test_bfs_converges_to_reference_levels(self):
        from repro.workloads import reference

        workload = get_workload("Wiki-BFS")
        results = workload.run_functional(steps=workload.functional_steps)
        dist = results[-1].state["dist"]
        source = workload.graph_data.source
        assert dist[source] == 0
        # Distances never exceed the sweep count except unreached marks.
        reached = dist < reference.UNREACHED
        assert reached.sum() > 1


class TestDnnDetails:
    def test_resnet_block_structure(self):
        workload = get_workload("ResNet-18")
        source = workload.source()
        assert source.count("conv3x3(") >= 17  # component + 16 block convs + stem
        assert "add_relu" in source
        assert "global_pool" in source

    def test_mobilenet_uses_depthwise(self):
        workload = get_workload("MobileNet")
        assert "dwconv3x3" in workload.source()

    def test_logits_match_reference_closely(self):
        workload = get_workload("MobileNet")
        results = workload.run_functional()
        measured = workload.extract(results)
        expected = workload.reference()
        assert np.allclose(measured, expected, rtol=1e-6, atol=1e-6)


class TestEndToEndDetails:
    def test_brainstimul_three_domains(self):
        workload = get_workload("BrainStimul")
        assert set(workload.kernels_by_domain) == {"DSP", "DA", "RBT"}

    def test_optionpricing_split_accelerators(self):
        workload = get_workload("OptionPricing")
        assert workload.component_domains == {"black_scholes": "DA-BLKS"}
        assert workload.accelerator_overrides["DA-BLKS"] == "hyperstreams"

    def test_option_prices_satisfy_no_arbitrage(self):
        from scipy import special as sp_special

        workload = get_workload("OptionPricing")
        results = workload.run_functional(steps=1)
        prices = results[0].outputs["call"]
        assert np.all(prices >= 0)
        # Deep in-the-money calls are worth at least S - K discounted at
        # the sentiment-adjusted rate actually used by the pricing kernel.
        chain = workload.chain
        inputs = workload.inputs(0, None)
        score = float(
            sp_special.expit(np.dot(workload.weights, inputs["x"]) + workload.bias)
        )
        rate = chain.rate + 0.02 * (score - 0.5)
        intrinsic = np.maximum(
            chain.spot - chain.strike * np.exp(-rate * chain.maturity), 0
        )
        assert np.all(prices >= intrinsic - 1e-6)
        # And never exceed the spot price.
        assert np.all(prices <= chain.spot + 1e-9)


class TestTrainingConvergence:
    """Training workloads must actually learn, not just execute."""

    def test_lrmf_loss_decreases(self):
        workload = get_workload("MovieL-100K")
        results = workload.run_functional(steps=4)
        losses = [float(result.outputs["loss"]) for result in results]
        assert losses == sorted(losses, reverse=True)
        assert losses[-1] < losses[0]

    def test_kmeans_inertia_decreases(self):
        workload = get_workload("ElecUse")
        results = workload.run_functional(steps=4)
        inertia = [float(result.outputs["inertia"]) for result in results]
        assert inertia[-1] <= inertia[0]

    def test_kmeans_explains_most_variance(self):
        # Lloyd iterations must drive inertia far below the one-cluster
        # baseline (the blobs are separable; K-means may still merge a
        # couple from a bad init, so we check explained variance, not
        # exact centre recovery).
        workload = get_workload("ElecUse")
        results = workload.run_functional(steps=8)
        inertia = float(results[-1].outputs["inertia"])
        points = workload.data.points
        one_cluster = float(((points - points.mean(axis=0)) ** 2).sum())
        assert inertia < one_cluster / 4

    def test_mpc_tracks_reference_direction(self):
        # Control signals stay bounded over a long closed run.
        workload = get_workload("MobileRobot")
        results = workload.run_functional(steps=30)
        signals = np.array([r.outputs["ctrl_sgnl"] for r in results])
        assert np.all(np.isfinite(signals))
