"""Tests for accelerator-program serialisation."""

import json

import pytest

from repro.errors import TargetError
from repro.targets import PolyMath, default_accelerators
from repro.targets.serialize import (
    application_to_json,
    program_from_dict,
    program_to_dict,
    programs_from_json,
)


@pytest.fixture(scope="module")
def compiled(mpc_source):
    compiler = PolyMath(default_accelerators())
    return compiler.compile(mpc_source, domain="RBT")


class TestRoundTrip:
    def test_json_round_trip_preserves_fragments(self, compiled):
        text = application_to_json(compiled, indent=2)
        restored = programs_from_json(text)
        assert set(restored) == set(compiled.programs)
        for domain, program in compiled.programs.items():
            assert restored[domain].ops() == program.ops()
            assert restored[domain].target == program.target

    def test_costs_identical_after_round_trip(self, compiled):
        restored = programs_from_json(application_to_json(compiled))
        for domain, program in compiled.programs.items():
            accelerator = compiled.accelerators[domain]
            original = accelerator.estimate(program)
            reloaded = accelerator.estimate(restored[domain])
            assert reloaded.seconds == pytest.approx(original.seconds)
            assert reloaded.energy_j == pytest.approx(original.energy_j)

    def test_program_dict_round_trip(self, compiled):
        program = compiled.programs["RBT"]
        restored = program_from_dict(program_to_dict(program))
        assert restored.ops() == program.ops()
        assert len(restored) == len(program)

    def test_document_is_valid_json(self, compiled):
        payload = json.loads(application_to_json(compiled))
        assert payload["format"] == "polymath-accelerator-ir"
        assert "RBT" in payload["programs"]


class TestErrors:
    def test_rejects_foreign_document(self):
        with pytest.raises(TargetError, match="not a polymath"):
            programs_from_json('{"format": "elf", "programs": {}}')

    def test_rejects_future_version(self):
        with pytest.raises(TargetError, match="version"):
            programs_from_json(
                '{"format": "polymath-accelerator-ir", "version": 99}'
            )
