"""Tests for the event-level GRAPHICIONADO stream simulation."""

import numpy as np
import pytest

from repro.targets.graphicionado_sim import (
    PIPELINE_DEPTH,
    edge_list_from_adjacency,
    simulate_bfs,
    simulate_sweep,
)
from repro.workloads import reference
from repro.workloads.datasets import rmat_graph


@pytest.fixture(scope="module")
def graph_data():
    return rmat_graph(256, 8, seed=13)


class TestSweep:
    def test_every_edge_processed_once(self, graph_data):
        result = simulate_sweep(graph_data.adjacency, streams=8)
        assert result.total_edges == graph_data.edges

    def test_makespan_at_least_analytic(self, graph_data):
        # Load imbalance means the event simulation can never beat the
        # perfectly balanced analytic estimate.
        result = simulate_sweep(graph_data.adjacency, streams=8)
        assert result.makespan_cycles >= result.analytic_cycles

    def test_power_law_graph_is_imbalanced(self, graph_data):
        result = simulate_sweep(graph_data.adjacency, streams=8)
        assert result.imbalance > 1.0

    def test_uniform_graph_is_balanced(self):
        rng = np.random.default_rng(0)
        adjacency = (rng.random((128, 128)) < 0.1).astype(np.int8)
        np.fill_diagonal(adjacency, 0)
        result = simulate_sweep(adjacency, streams=8)
        assert result.imbalance < 1.3

    def test_more_streams_never_slower(self, graph_data):
        slow = simulate_sweep(graph_data.adjacency, streams=2)
        fast = simulate_sweep(graph_data.adjacency, streams=16)
        assert fast.makespan_cycles <= slow.makespan_cycles

    def test_empty_graph(self):
        result = simulate_sweep(np.zeros((16, 16), dtype=np.int8), streams=4)
        assert result.total_edges == 0
        assert result.makespan_cycles == PIPELINE_DEPTH

    def test_edge_list_matches_nonzeros(self, graph_data):
        src, dst = edge_list_from_adjacency(graph_data.adjacency)
        assert src.size == graph_data.edges
        assert np.all(graph_data.adjacency[src, dst] == 1)


class TestBfs:
    def test_levels_match_reference(self, graph_data):
        levels, _, _ = simulate_bfs(
            graph_data.adjacency, graph_data.source, streams=8
        )
        expected = reference.bfs_levels(graph_data.adjacency, graph_data.source)
        reached = expected < reference.UNREACHED
        assert np.allclose(levels[reached], expected[reached])
        assert np.all(np.isinf(levels[~reached]))

    def test_frontier_filtering_beats_full_sweeps(self, graph_data):
        # Active-vertex queues process each edge only when its source is
        # on the frontier; full sweeps reprocess every edge every level.
        _, frontier_cycles, sweeps = simulate_bfs(
            graph_data.adjacency, graph_data.source, streams=8
        )
        full = simulate_sweep(graph_data.adjacency, streams=8)
        assert frontier_cycles < full.makespan_cycles * sweeps

    def test_max_sweeps_cap(self, graph_data):
        _, _, sweeps = simulate_bfs(
            graph_data.adjacency, graph_data.source, streams=8, max_sweeps=2
        )
        assert sweeps == 2

    def test_converges(self, graph_data):
        _, _, sweeps = simulate_bfs(graph_data.adjacency, graph_data.source)
        assert 1 < sweeps < graph_data.vertices
