"""Concurrency suite for the repro.serve subsystem.

The contracts under test:

* identical concurrent requests coalesce into a single compile and a
  single plan build (counter-based, not timing-based),
* a concurrent run is bit-identical to a serial replay of the same trace,
* queue overflow surfaces as explicit backpressure (``QueueFullError``
  with a positive ``retry_after``), never as blocking or silent loss,
* a crashing request yields an error response without poisoning the
  worker pool,
* dispatch honours priority (high before normal before low), FIFO
  within a level,
* disk-cache writes are atomic (temp-file + ``os.replace``) and degrade
  to memory-only on disk failure.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.driver.cache import ArtifactCache, fingerprint
from repro.errors import QueueFullError
from repro.serve import (
    PRIORITY_HIGH,
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Request,
    Scheduler,
    Server,
    percentile,
    replay,
    run_serial,
    synth_trace,
)


# ---------------------------------------------------------------------------
# Coalescing: N identical concurrent requests, one compile, one plan.
# ---------------------------------------------------------------------------


def test_identical_concurrent_requests_coalesce():
    requests = [Request(workload="MobileRobot", steps=2) for _ in range(8)]
    with Server(workers=4, queue_capacity=16) as server:
        tickets = [server.submit(request) for request in requests]
        responses = [ticket.wait(timeout=120) for ticket in tickets]
    report = server.report()

    assert all(response.ok for response in responses)
    signatures = {response.signature for response in responses}
    assert len(signatures) == 1

    # Exactly one worker ran the compile stages; every other request was
    # served from the artifact cache or coalesced onto the in-flight
    # compile. Same for planning.
    compile_counts = report.provenance["compile"]
    assert compile_counts.get("built", 0) == 1
    assert sum(compile_counts.values()) == len(requests)
    plan_counts = report.provenance["plan"]
    assert plan_counts.get("built", 0) == 1
    assert sum(plan_counts.values()) == len(requests)

    # The hard, counter-based form of the same claim.
    assert report.distinct_configs == 1
    assert report.plans_built == report.expected_plans
    assert report.statements_planned == report.expected_statements
    assert report.plan_reuse_ok
    assert report.completed == len(requests)
    assert report.failed == 0


def test_concurrent_run_bit_identical_to_serial():
    trace = synth_trace(
        requests=10,
        workloads=("MobileRobot", "FFT-8192"),
        seed=3,
        max_steps=3,
    )
    server = Server(workers=4, queue_capacity=32)
    with server:
        concurrent, retries = replay(server, trace)
    # Snapshot before the serial replay: PLAN_STATS is process-global, and
    # the serial baseline's own plan builds must not pollute this report.
    report = server.report()
    serial, _ = run_serial(trace)

    assert retries == 0
    assert len(concurrent) == len(serial) == len(trace)
    for conc, ref in zip(concurrent, serial):
        assert conc.ok and ref.ok
        assert conc.signature is not None
        assert conc.signature == ref.signature
    assert report.plan_reuse_ok


# ---------------------------------------------------------------------------
# Backpressure.
# ---------------------------------------------------------------------------


def test_queue_overflow_raises_backpressure_error():
    # Not started: nothing drains the queue, so capacity is exact.
    server = Server(workers=1, queue_capacity=2)
    first = server.submit(Request(workload="MobileRobot"))
    second = server.submit(Request(workload="MobileRobot"))

    with pytest.raises(QueueFullError) as excinfo:
        server.submit(Request(workload="MobileRobot"))
    assert excinfo.value.retry_after > 0

    # The rejected request left no residue; admitted ones still complete.
    server.start()
    assert server.drain(timeout=120)
    server.close()
    assert first.wait(timeout=1).ok
    assert second.wait(timeout=1).ok
    report = server.report()
    assert report.rejected == 1
    assert report.completed == 2
    assert report.queue_peak == 2


def test_submit_after_close_is_rejected():
    server = Server(workers=1, queue_capacity=4)
    server.start()
    server.close()
    with pytest.raises(QueueFullError):
        server.submit(Request(workload="MobileRobot"))


# ---------------------------------------------------------------------------
# Fault isolation: a crashing request must not poison the pool.
# ---------------------------------------------------------------------------


def test_crashing_request_does_not_poison_pool():
    with Server(workers=2, queue_capacity=8) as server:
        bad = server.request(Request(workload="no-such-workload"), timeout=60)
        assert not bad.ok
        assert bad.error and "no-such-workload" in bad.error
        assert bad.error_kind == "WorkloadError"
        # Both workers survived and the next request is served normally.
        assert server.pool.alive == 2
        good = server.request(Request(workload="MobileRobot"), timeout=120)
        assert good.ok and good.signature is not None
    assert server.pool.handler_faults == 0
    report = server.report()
    assert report.completed == 1
    assert report.failed == 1


# ---------------------------------------------------------------------------
# Priority scheduling.
# ---------------------------------------------------------------------------


def test_scheduler_orders_by_priority_then_fifo():
    scheduler = Scheduler(capacity=8)
    scheduler.submit(PRIORITY_LOW, "low-0")
    scheduler.submit(PRIORITY_NORMAL, "normal-0")
    scheduler.submit(PRIORITY_HIGH, "high-0")
    scheduler.submit(PRIORITY_NORMAL, "normal-1")
    scheduler.submit(PRIORITY_HIGH, "high-1")
    order = [scheduler.next(timeout=0.1) for _ in range(5)]
    assert order == ["high-0", "high-1", "normal-0", "normal-1", "low-0"]
    scheduler.close()
    assert scheduler.next(timeout=0.1) is None


def test_server_dispatches_by_priority():
    # Queue everything before starting the single worker, so dispatch
    # order is purely the scheduler's.
    server = Server(workers=1, queue_capacity=8)
    low = server.submit(Request(workload="MobileRobot", priority=PRIORITY_LOW))
    normal = server.submit(Request(workload="MobileRobot"))
    high = server.submit(Request(workload="MobileRobot", priority=PRIORITY_HIGH))
    server.start()
    assert server.drain(timeout=120)
    server.close()
    started = [ticket.metrics.started_at for ticket in (high, normal, low)]
    assert started == sorted(started)


# ---------------------------------------------------------------------------
# Atomic disk-cache writes.
# ---------------------------------------------------------------------------


def test_disk_writes_are_atomic_and_leave_no_temp_files(tmp_path):
    cache = ArtifactCache(cache_dir=str(tmp_path))
    key = fingerprint("artifact-v1")
    assert cache.put(key, {"payload": 1})
    entries = sorted(p.name for p in tmp_path.iterdir())
    assert entries == [f"{key}.pkl"]  # no .tmp residue
    with open(tmp_path / f"{key}.pkl", "rb") as handle:
        assert pickle.load(handle) == {"payload": 1}


def test_failed_disk_write_preserves_old_entry(tmp_path, monkeypatch):
    cache = ArtifactCache(cache_dir=str(tmp_path))
    key = fingerprint("artifact-v1")
    cache.put(key, {"version": 1})

    def broken_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", broken_replace)
    # The put still succeeds (memory tier), the disk tier degrades, and
    # the published on-disk entry is the intact old version.
    assert cache.put(key, {"version": 2})
    assert cache.stats.disk_errors == 1
    monkeypatch.undo()

    assert cache.get(key) == {"version": 2}  # memory tier has the new value
    with open(tmp_path / f"{key}.pkl", "rb") as handle:
        assert pickle.load(handle) == {"version": 1}
    assert not [p for p in tmp_path.iterdir() if p.name.endswith(".tmp")]


# ---------------------------------------------------------------------------
# Metrics plumbing.
# ---------------------------------------------------------------------------


def test_percentile_nearest_rank():
    values = [10.0, 20.0, 30.0, 40.0]
    assert percentile(values, 0.5) == 20.0
    assert percentile(values, 0.95) == 40.0
    assert percentile([], 0.5) == 0.0


def test_report_serialises_to_json_compatible_dict():
    trace = synth_trace(requests=4, workloads=("MobileRobot",), seed=1)
    with Server(workers=2, queue_capacity=8) as server:
        replay(server, trace)
    payload = server.report().to_dict()
    assert payload["completed"] == 4
    assert payload["plan_reuse"]["ok"] is True
    assert payload["throughput_rps"] > 0
    assert len(payload["requests"]) == 4
    for entry in payload["requests"]:
        assert entry["compile_provenance"] in ("built", "cache", "coalesced")
        assert entry["queue_seconds"] >= 0


# ---------------------------------------------------------------------------
# Scheduler concurrency: the estimator runs outside the lock, estimator
# failures are counted rather than swallowed, and close() is safe to race
# against submitters and poppers.
# ---------------------------------------------------------------------------


def test_retry_after_estimator_runs_outside_scheduler_lock():
    scheduler = Scheduler(capacity=1)
    scheduler.submit(PRIORITY_NORMAL, "occupant")

    observed = {}

    def estimator(depth):
        # Deterministic proof (not timing-based): if submit() still held
        # the non-reentrant scheduler lock while calling us, both of
        # these would deadlock — acquire() would never succeed and
        # len() blocks on the same lock.
        acquired = scheduler._lock.acquire(timeout=1.0)
        observed["lock_free"] = acquired
        if acquired:
            scheduler._lock.release()
        observed["depth_via_len"] = len(scheduler)
        return 2.5

    scheduler.retry_after_estimator = estimator
    with pytest.raises(QueueFullError) as excinfo:
        scheduler.submit(PRIORITY_NORMAL, "rejected")
    assert observed["lock_free"] is True
    assert observed["depth_via_len"] == 1
    assert excinfo.value.retry_after == 2.5


def test_estimator_exception_is_counted_not_swallowed():
    scheduler = Scheduler(capacity=1)
    scheduler.submit(PRIORITY_NORMAL, "occupant")

    def broken(depth):
        raise RuntimeError("estimator bug")

    scheduler.retry_after_estimator = broken
    for _ in range(2):
        with pytest.raises(QueueFullError) as excinfo:
            scheduler.submit(PRIORITY_NORMAL, "rejected")
        assert excinfo.value.retry_after == 0.0

    counters = scheduler.counters()
    assert counters["estimator_errors"] == 2
    assert counters["rejected"] == 2
    assert counters["admitted"] == 1


def test_concurrent_rejections_overlap_in_the_estimator():
    import threading

    scheduler = Scheduler(capacity=1)
    scheduler.submit(PRIORITY_NORMAL, "occupant")

    # Two rejections must be able to sit in the estimator at the same
    # time. Under the old under-lock call they serialised, and this
    # barrier could never be satisfied.
    barrier = threading.Barrier(2, timeout=10.0)

    def estimator(depth):
        barrier.wait()
        return 0.5

    scheduler.retry_after_estimator = estimator
    failures = []

    def reject_one():
        try:
            with pytest.raises(QueueFullError):
                scheduler.submit(PRIORITY_NORMAL, "rejected")
        except Exception as exc:  # barrier timeout -> BrokenBarrierError
            failures.append(exc)

    threads = [threading.Thread(target=reject_one) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not failures
    assert scheduler.counters()["rejected"] == 2


def test_close_racing_submit_and_pop_loses_nothing():
    import threading

    scheduler = Scheduler(capacity=1024)
    submitters = 4
    per_thread = 100
    admitted = []
    rejected = []
    popped = []
    admitted_lock = threading.Lock()
    start = threading.Barrier(submitters + 2)  # + popper + closer

    def submit_many(index):
        start.wait()
        for i in range(per_thread):
            entry = f"s{index}-{i}"
            try:
                scheduler.submit(PRIORITY_NORMAL, entry)
                with admitted_lock:
                    admitted.append(entry)
            except QueueFullError:
                with admitted_lock:
                    rejected.append(entry)

    def pop_all():
        start.wait()
        while True:
            entry = scheduler.next(timeout=0.2)
            if entry is None:
                # Closed and drained (or momentarily empty pre-close):
                # only stop once the scheduler is actually closed.
                if scheduler.closed and len(scheduler) == 0:
                    return
                continue
            popped.append(entry)

    def close_midway():
        start.wait()
        scheduler.close()

    threads = [
        threading.Thread(target=submit_many, args=(i,))
        for i in range(submitters)
    ]
    threads.append(threading.Thread(target=pop_all))
    threads.append(threading.Thread(target=close_midway))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not any(thread.is_alive() for thread in threads)

    # Conservation: every submission either raised or was admitted, and
    # every admitted entry was popped exactly once (close() drains).
    assert len(admitted) + len(rejected) == submitters * per_thread
    assert sorted(popped) == sorted(admitted)
    counters = scheduler.counters()
    assert counters["admitted"] == len(admitted)
    assert counters["depth"] == 0
    assert counters["estimator_errors"] == 0
