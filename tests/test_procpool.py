"""Process-parallel serving suite: cross-process compile coalescing via
lease files, the process-backed worker pool, crash healing, priority
aging, closed-scheduler rejections, and the asyncio admission frontend.

The contracts under test:

* two processes racing the same artifact key run the builder exactly
  once — the lease loser waits on the published artifact instead of
  recompiling,
* a killed lease-holder's stale lease is detected (pid probe / ttl) and
  reclaimed without deadlock or double-publish,
* process mode is bit-identical to thread mode on a mixed trace, with
  per-process counters aggregated into one truthful ServeReport,
* a worker process that dies mid-service answers its request with
  ``WorkerCrashedError``, the slot respawns, and later requests succeed,
* priority aging promotes long-waiting low-priority entries (injectable
  clock, no sleeping),
* a closed scheduler rejects with ``closed=True`` / ``retry_after=None``
  and ``loadgen.replay`` gives up instead of spinning,
* ``Ticket.add_done_callback`` fires exactly once, including when the
  ticket is already done,
* the saturation harness drives the asyncio frontend to completion with
  bit-identical responses.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.driver.cache import ArtifactCache
from repro.driver.lease import Lease
from repro.serve import (
    PRIORITY_LOW,
    PRIORITY_NORMAL,
    Request,
    Scheduler,
    Server,
    replay,
    run_serial,
    saturate,
    synth_trace,
)
from repro.errors import QueueFullError, WorkerCrashedError


_FORK = multiprocessing.get_context("fork")


# ---------------------------------------------------------------------------
# Cross-process single-flight: the lease protocol on the disk tier.
# ---------------------------------------------------------------------------


def _race_get_or_build(cache_dir, key, barrier, marker_dir, queue):
    cache = ArtifactCache(cache_dir=str(cache_dir))

    def builder():
        marker = os.path.join(marker_dir, f"built-{os.getpid()}")
        with open(marker, "w") as handle:
            handle.write(str(os.getpid()))
        time.sleep(0.2)  # long enough that the losers must wait
        return {"payload": "artifact-body", "key": key}

    barrier.wait(timeout=30)
    artifact, provenance = cache.get_or_build(key, builder)
    queue.put(
        (
            os.getpid(),
            provenance,
            artifact["payload"],
            cache.stats.lease_waited,
        )
    )


def test_two_processes_racing_same_key_build_exactly_once(tmp_path):
    cache_dir = tmp_path / "cache"
    marker_dir = tmp_path / "markers"
    marker_dir.mkdir()
    barrier = _FORK.Barrier(3)
    queue = _FORK.Queue()
    racers = [
        _FORK.Process(
            target=_race_get_or_build,
            args=(cache_dir, "k-race", barrier, str(marker_dir), queue),
        )
        for _ in range(3)
    ]
    for racer in racers:
        racer.start()
    results = [queue.get(timeout=60) for _ in racers]
    for racer in racers:
        racer.join(timeout=10)
        assert racer.exitcode == 0

    provenances = sorted(result[1] for result in results)
    assert provenances == ["built", "coalesced", "coalesced"]
    # Every process got the same artifact body.
    assert {result[2] for result in results} == {"artifact-body"}
    # The builder ran in exactly one process: one marker file.
    assert len(list(marker_dir.iterdir())) == 1
    # The losers waited on the artifact (lease_waited counted in-child).
    waited = sum(result[3] for result in results)
    assert waited == 2
    # No lease file survives the race.
    assert not (cache_dir / "k-race.lease").exists()


def test_dead_holders_stale_lease_is_reclaimed(tmp_path):
    cache = ArtifactCache(cache_dir=str(tmp_path))
    # A child that exits immediately gives us a guaranteed-dead pid.
    child = _FORK.Process(target=lambda: None)
    child.start()
    child.join()
    lease_path = tmp_path / "k-stale.lease"
    lease_path.write_text(f"{child.pid}:{time.time()}")

    started = time.monotonic()
    artifact, provenance = cache.get_or_build(
        "k-stale", lambda: {"v": 1}, wait_timeout_s=30.0
    )
    elapsed = time.monotonic() - started

    assert provenance == "built"
    assert artifact == {"v": 1}
    assert cache.stats.lease_reclaimed >= 1
    assert elapsed < 10.0  # reclaimed, not waited out
    assert not lease_path.exists()


def test_killed_leaseholder_does_not_deadlock_waiters(tmp_path):
    """SIGKILL the process holding the lease mid-build; a waiter must
    reclaim and build — no deadlock, no double-publish."""
    cache_dir = tmp_path / "cache"

    def hold_forever(ready):
        cache = ArtifactCache(cache_dir=str(cache_dir))
        lease = Lease(cache._lease_path("k-kill"))
        assert lease.acquire()
        ready.set()
        time.sleep(300)  # killed long before this returns

    ready = _FORK.Event()
    holder = _FORK.Process(target=hold_forever, args=(ready,))
    holder.start()
    assert ready.wait(timeout=30)
    os.kill(holder.pid, signal.SIGKILL)
    holder.join(timeout=10)

    cache = ArtifactCache(cache_dir=str(cache_dir))
    started = time.monotonic()
    artifact, provenance = cache.get_or_build(
        "k-kill", lambda: {"v": "rebuilt"}, wait_timeout_s=60.0
    )
    elapsed = time.monotonic() - started

    assert provenance == "built"
    assert artifact == {"v": "rebuilt"}
    assert elapsed < 30.0
    assert cache.stats.lease_reclaimed >= 1


def test_lease_staleness_probes():
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "probe.lease")
        lease = Lease(path, ttl_s=60.0)
        assert lease.acquire()
        # Our own live lease is never stale.
        assert not Lease(path, ttl_s=60.0).stale()
        lease.release()
        # An expired-ttl lease is stale even with a live pid.
        with open(path, "w") as handle:
            handle.write(f"{os.getpid()}:{time.time() - 120}")
        assert Lease(path, ttl_s=60.0).stale()


# ---------------------------------------------------------------------------
# Process pool: bit-identity, counter aggregation, crash healing.
# ---------------------------------------------------------------------------


def _mixed_trace():
    return synth_trace(
        requests=10,
        workloads=("MobileRobot", "ElecUse", "FFT-8192"),
        seed=7,
        max_steps=2,
    )


def test_process_mode_bit_identical_to_thread_mode(tmp_path):
    from repro.driver import CompilerSession

    trace = _mixed_trace()

    with Server(workers=3, queue_capacity=32) as threaded:
        thread_responses, _ = replay(threaded, trace)

    session = CompilerSession(cache_dir=str(tmp_path / "shared"))
    with Server(
        session=session, workers=3, queue_capacity=32, pool="process"
    ) as server:
        responses, _ = replay(server, trace)
    report = server.report()

    assert all(response.ok for response in responses)
    assert [r.signature for r in responses] == [
        r.signature for r in thread_responses
    ]
    assert report.pool == "process"
    assert report.processes == 3
    assert report.worker_crashes == 0
    assert report.conservation_ok
    # Aggregated per-process counters stay truthful: every child plans
    # its own configs once, and the report's expectation accounts for
    # that per-process rebuild.
    assert report.plan_reuse_ok
    assert report.plans_built == report.expected_plans
    assert report.distinct_configs == 3


def test_process_mode_coalesces_compiles_across_processes(tmp_path):
    """With a shared disk tier, the N children build each artifact once
    between them — the lease losers coalesce."""
    from repro.driver import CompilerSession

    trace = _mixed_trace()
    session = CompilerSession(cache_dir=str(tmp_path / "shared"))
    with Server(
        session=session, workers=3, queue_capacity=32, pool="process"
    ) as server:
        responses, _ = replay(server, trace)
    report = server.report()

    assert all(response.ok for response in responses)
    compile_counts = report.provenance_counts("compile")
    # 3 distinct configs; every "built" beyond 3 must have been
    # prevented by the disk tier + lease protocol.
    assert compile_counts.get("built", 0) == 3
    assert sum(compile_counts.values()) == len(trace)


def test_worker_crash_yields_error_and_respawns():
    with Server(workers=2, queue_capacity=16, pool="process") as server:
        # Warm both workers so every child has served at least once.
        warm = [
            server.request(Request(workload="MobileRobot", steps=1))
            for _ in range(4)
        ]
        assert all(response.ok for response in warm)

        # Kill every child out from under the pool.
        with server.procs._members_lock:
            members = list(server.procs._members.values())
        for member in members:
            os.kill(member.process.pid, signal.SIGKILL)
        for member in members:
            member.process.join(timeout=10)

        # The next dispatch per worker hits the dead child: the request
        # fails loudly with WorkerCrashedError and the slot respawns.
        after = [
            server.request(Request(workload="MobileRobot", steps=1))
            for _ in range(6)
        ]
    report = server.report()

    crashed = [r for r in after if not r.ok]
    healed = [r for r in after if r.ok]
    assert crashed, "killing every child must fail at least one request"
    assert all(
        r.error_kind == "WorkerCrashedError" for r in crashed
    )
    assert healed, "respawned children must serve subsequent requests"
    assert report.worker_crashes == len(crashed)
    assert report.conservation_ok
    assert report.completed == len(warm) + len(healed)
    assert report.failed == len(crashed)


def test_worker_crashed_error_is_a_serve_error():
    from repro.errors import PolyMathError, ServeError

    error = WorkerCrashedError("boom")
    assert isinstance(error, ServeError)
    assert isinstance(error, PolyMathError)


# ---------------------------------------------------------------------------
# Priority aging (injectable clock — no sleeping).
# ---------------------------------------------------------------------------


def test_aging_promotes_long_waiting_low_priority():
    now = [0.0]
    scheduler = Scheduler(capacity=8, aging_s=1.0, clock=lambda: now[0])
    scheduler.submit(PRIORITY_LOW, "old-low")
    now[0] = 2.5
    scheduler.submit(PRIORITY_NORMAL, "new-normal")
    # After 2.5s the low entry has aged two levels (effective 0) while
    # the just-submitted normal entry has not aged at all — the old
    # request dispatches first instead of starving.
    assert scheduler.next(timeout=1) == "old-low"
    assert scheduler.next(timeout=1) == "new-normal"


def test_without_aging_priority_order_is_strict():
    scheduler = Scheduler(capacity=8)
    scheduler.submit(PRIORITY_LOW, "low")
    scheduler.submit(PRIORITY_NORMAL, "normal")
    assert scheduler.next(timeout=1) == "normal"
    assert scheduler.next(timeout=1) == "low"


def test_aging_rebuild_is_lazy():
    now = [0.0]
    scheduler = Scheduler(capacity=8, aging_s=1.0, clock=lambda: now[0])
    scheduler.submit(PRIORITY_LOW, "low")
    scheduler.submit(PRIORITY_NORMAL, "normal")
    # Within the first interval nothing has aged: strict priority holds.
    now[0] = 0.5
    assert scheduler.next(timeout=1) == "normal"


def test_aging_s_must_be_positive():
    with pytest.raises(ValueError):
        Scheduler(capacity=8, aging_s=0)
    with pytest.raises(ValueError):
        Scheduler(capacity=8, aging_s=-1.0)


# ---------------------------------------------------------------------------
# Closed-scheduler rejections are terminal, not backpressure.
# ---------------------------------------------------------------------------


def test_closed_scheduler_rejection_is_distinguishable():
    scheduler = Scheduler(capacity=4)
    scheduler.close()
    with pytest.raises(QueueFullError) as excinfo:
        scheduler.submit(PRIORITY_NORMAL, "late")
    assert excinfo.value.closed
    assert excinfo.value.retry_after is None


def test_backpressure_rejection_still_carries_retry_after():
    scheduler = Scheduler(capacity=1)
    scheduler.submit(PRIORITY_NORMAL, "fills-the-queue")
    with pytest.raises(QueueFullError) as excinfo:
        scheduler.submit(PRIORITY_NORMAL, "rejected")
    assert not excinfo.value.closed
    assert excinfo.value.retry_after is not None


def test_replay_gives_up_on_closed_server():
    server = Server(workers=1, queue_capacity=4)
    server.start()
    server.close()
    trace = [Request(workload="MobileRobot", steps=1) for _ in range(3)]
    started = time.monotonic()
    responses, retries = replay(server, trace, retry=True)
    elapsed = time.monotonic() - started
    assert responses == [None, None, None]
    assert retries == 0  # closed is terminal: no retry spin
    assert elapsed < 5.0


# ---------------------------------------------------------------------------
# Ticket callbacks and the asyncio admission frontend.
# ---------------------------------------------------------------------------


def test_ticket_done_callback_fires_exactly_once():
    fired = []
    with Server(workers=1, queue_capacity=4) as server:
        ticket = server.submit(Request(workload="MobileRobot", steps=1))
        ticket.add_done_callback(lambda t: fired.append(("pre", t.response)))
        response = ticket.wait(timeout=120)
        # Registering on an already-done ticket fires immediately.
        ticket.add_done_callback(lambda t: fired.append(("post", t.response)))
    assert [tag for tag, _ in fired] == ["pre", "post"]
    assert all(resp is response for _, resp in fired)


def test_saturate_completes_with_bit_identical_responses():
    with Server(workers=2, queue_capacity=32) as server:
        summary = saturate(server, requests=200, max_inflight=64)
    report = server.report()
    assert summary["completed"] == 200
    assert summary["errors"] == 0
    assert len(summary["signatures"]) == 1
    assert report.conservation_ok
    assert report.plan_reuse_ok


# ---------------------------------------------------------------------------
# Per-server plan-stat scoping (satellite: plan_reuse_ok must not read
# the process-global PLAN_STATS).
# ---------------------------------------------------------------------------


def test_plan_reuse_scoped_per_server():
    trace = synth_trace(
        requests=6, workloads=("MobileRobot",), seed=1, max_steps=2
    )
    with Server(workers=2, queue_capacity=16) as first:
        replay(first, trace)
    # A second server with a fresh session must report only its own
    # plan builds — the first run's counters must not leak in.
    with Server(workers=2, queue_capacity=16) as second:
        replay(second, trace)
    report = second.report()
    assert report.plan_reuse_ok
    assert report.distinct_configs == 1
    assert report.plans_built == report.expected_plans


def test_serial_baseline_matches_process_trace(tmp_path):
    from repro.driver import CompilerSession

    trace = synth_trace(
        requests=6, workloads=("MobileRobot", "FFT-8192"), seed=5,
        max_steps=2,
    )
    serial, _ = run_serial(trace)
    session = CompilerSession(cache_dir=str(tmp_path / "shared"))
    with Server(
        session=session, workers=2, queue_capacity=16, pool="process"
    ) as server:
        responses, _ = replay(server, trace)
    assert [r.signature for r in responses] == [
        r.signature for r in serial
    ]
