"""Tests for the extension layers: DSE, pipelined SoC, execution traces."""

import numpy as np
import pytest

from repro.eval.dse import DesignPoint, explore, pareto, render
from repro.hw import SoCRuntime
from repro.srdfg import Executor, build
from repro.targets import PolyMath, Robox, default_accelerators
from repro.workloads import get_workload


class TestDesignSpaceExploration:
    @pytest.fixture(scope="class")
    def points(self):
        return explore(
            "MobileRobot",
            Robox,
            {
                "throughput_scale": [0.25, 1.0, 4.0],
                "frequency_hz": [0.5e9, 1.0e9],
            },
            iterations=1,
        )

    def test_full_grid_explored(self, points):
        assert len(points) == 6
        configs = {tuple(sorted(p.config.items())) for p in points}
        assert len(configs) == 6

    def test_more_hardware_is_faster(self, points):
        by_config = {
            (p.config["throughput_scale"], p.config["frequency_hz"]): p
            for p in points
        }
        assert (
            by_config[(4.0, 1.0e9)].seconds <= by_config[(0.25, 0.5e9)].seconds
        )

    def test_pareto_frontier_subset_and_nondominated(self, points):
        frontier = pareto(points)
        assert 0 < len(frontier) <= len(points)
        for a in frontier:
            for b in points:
                assert not (
                    b.seconds < a.seconds and b.energy_j < a.energy_j
                ), (a.config, b.config)

    def test_render(self, points):
        text = render(points, title="robox sweep")
        assert "robox sweep" in text
        assert "EDP" in text

    def test_edp(self):
        point = DesignPoint(config={}, seconds=2.0, energy_j=3.0)
        assert point.edp == 6.0


class TestPipelinedSoC:
    def test_pipelining_bounds_by_slowest_stage(self):
        workload = get_workload("BrainStimul")
        accelerators = default_accelerators()
        app = PolyMath(accelerators).compile(
            workload.source(), domain=workload.domain
        )
        report = SoCRuntime(accelerators).execute(app)
        assert report.pipelined_seconds <= report.total.seconds
        assert report.pipelined_seconds >= max(
            stats.seconds for stats in report.per_domain.values()
        )
        assert report.pipeline_speedup >= 1.0
        # A three-stage chain pipelines to at most 3x.
        assert report.pipeline_speedup <= len(report.per_domain) + 1


class TestExecutionTrace:
    def test_trace_records_every_node(self, mpc_source, mpc_data):
        graph = build(mpc_source, domain="RBT")
        trace = []
        Executor(graph).run(trace=trace, **mpc_data)
        assert len(trace) == len(graph.nodes)
        kinds = {record["kind"] for record in trace}
        assert {"var", "component"} <= kinds

    def test_trace_shapes_match_outputs(self):
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] * 2.0; }"
        )
        trace = []
        Executor(graph).run(inputs={"x": np.ones(4)}, trace=trace)
        compute = next(r for r in trace if r["kind"] == "compute")
        assert compute["produced"]["y"][0] == (4,)

    def test_trace_disabled_by_default(self):
        graph = build(
            "main(input float x[2], output float y[2]) {"
            " index i[0:1]; y[i] = x[i]; }"
        )
        result = Executor(graph).run(inputs={"x": np.zeros(2)})
        assert set(result.outputs) == {"y"}
