"""Tests for the evaluation harness, figures, and tables."""

import pytest

from repro.eval import Harness, all_tables, geomean
from repro.eval.figures import FigureData, figure13
from repro.eval.optimal import percent_of_optimal
from repro.workloads import END_TO_END, SINGLE_DOMAIN

#: A cheap-but-representative subset: one workload per domain.
SUBSET = ["MobileRobot", "Wiki-BFS", "ElecUse", "FFT-8192", "MobileNet"]


@pytest.fixture(scope="module")
def harness():
    return Harness()


@pytest.fixture(scope="module")
def runs(harness):
    return {name: harness.run(name) for name in SUBSET}


class TestHarnessRuns:
    def test_all_measurements_positive(self, runs):
        for name, run in runs.items():
            for stats in (run.accel, run.cpu, run.titan, run.jetson, run.expert):
                assert stats.seconds > 0, name
                assert stats.energy_j > 0, name

    def test_run_is_cached(self, harness):
        assert harness.run("MobileRobot") is harness.run("MobileRobot")

    def test_accelerator_names_match_table_v(self, runs):
        assert runs["MobileRobot"].accelerator_names["RBT"] == "robox"
        assert runs["Wiki-BFS"].accelerator_names["GA"] == "graphicionado"
        assert runs["ElecUse"].accelerator_names["DA"] == "tabla"
        assert runs["FFT-8192"].accelerator_names["DSP"] == "deco"
        assert runs["MobileNet"].accelerator_names["DL"] == "vta"


class TestFigure7Shape:
    """The paper's qualitative claims that must hold (EXPERIMENTS.md)."""

    def test_accelerators_beat_cpu_except_dl(self, runs):
        for name in ("MobileRobot", "Wiki-BFS", "ElecUse", "FFT-8192"):
            assert runs[name].runtime_vs_cpu > 1.0, name

    def test_dl_loses_runtime_but_wins_energy(self, runs):
        run = runs["MobileNet"]
        assert run.runtime_vs_cpu < 1.0  # VTA is a low-power part
        assert run.energy_vs_cpu > 1.0

    def test_energy_improvement_exceeds_runtime(self, runs):
        for name, run in runs.items():
            assert run.energy_vs_cpu > run.runtime_vs_cpu, name


class TestFigure8Shape:
    def test_titan_wins_raw_runtime_on_dense(self, runs):
        # DCT/DL-class dense work favours the 250 W discrete GPU.
        assert runs["MobileNet"].runtime_vs(runs["MobileNet"].titan) < 1.0

    def test_accelerators_win_ppw_against_titan_on_small_kernels(self, runs):
        assert runs["MobileRobot"].ppw_vs(runs["MobileRobot"].titan) > 1.0
        assert runs["FFT-8192"].ppw_vs(runs["FFT-8192"].titan) > 1.0


class TestFigure9Shape:
    def test_percent_optimal_bounded(self, runs):
        for name, run in runs.items():
            assert 0 < run.percent_optimal <= 100.0, name

    def test_expert_never_slower(self, runs):
        for name, run in runs.items():
            assert run.expert.seconds <= run.accel.seconds * 1.0001, name

    def test_percent_of_optimal_helper(self):
        from repro.hw.cost import PerfStats

        assert percent_of_optimal(
            PerfStats(seconds=2.0), PerfStats(seconds=1.0)
        ) == pytest.approx(50.0)


class TestEndToEndCombos:
    @pytest.fixture(scope="class")
    def brain(self, harness):
        return harness.end_to_end("BrainStimul")

    def test_all_combinations_present(self, brain):
        combos, _ = brain
        assert len(combos) == 7  # 2^3 - 1 subsets of {FFT, LR, MPC}

    def test_full_acceleration_fastest(self, brain):
        combos, _ = brain
        full = combos[("FFT", "LR", "MPC")]
        for label, report in combos.items():
            if len(label) < 3:
                assert full.total.seconds <= report.total.seconds * 1.01, label

    def test_amdahl_gap_versus_best_single(self, brain):
        combos, _ = brain
        full = combos[("FFT", "LR", "MPC")].total.seconds
        best_single = min(
            report.total.seconds
            for label, report in combos.items()
            if len(label) == 1
        )
        # Accelerating everything buys a real factor over the best single
        # kernel (the paper reports 1.85x for BrainStimul).
        assert best_single / full > 1.2

    def test_communication_fraction_reasonable(self, brain):
        combos, _ = brain
        full = combos[("FFT", "LR", "MPC")]
        assert 0.0 < full.communication_fraction < 0.5

    def test_option_pricing_private_domain(self, harness):
        combos, baselines = harness.end_to_end("OptionPricing")
        assert ("BLKS",) in combos and ("LR",) in combos
        full = combos[("BLKS", "LR")] if ("BLKS", "LR") in combos else combos[("LR", "BLKS")]
        assert baselines["cpu"].seconds / full.total.seconds > 1.0


class TestTables:
    def test_all_tables_render(self):
        tables = all_tables()
        assert set(tables) == {f"table{i}" for i in range(1, 7)}
        for table in tables.values():
            text = table.render()
            assert table.caption in text

    def test_table2_polymath_covers_five_domains(self):
        table2 = all_tables()["table2"]
        header = table2.columns
        polymath_column = header.index("PolyMath")
        supported = [row[polymath_column] for row in table2.rows]
        assert supported.count("yes") == 5
        genomics_row = next(row for row in table2.rows if row[0] == "Genomics")
        assert genomics_row[polymath_column] == "no"

    def test_table3_lists_all_benchmarks(self):
        table3 = all_tables()["table3"]
        names = {row[1] for row in table3.rows}
        assert names == set(SINGLE_DOMAIN)

    def test_table4_lists_end_to_end(self):
        table4 = all_tables()["table4"]
        assert {row[0] for row in table4.rows} == set(END_TO_END)

    def test_table6_platform_count(self):
        table6 = all_tables()["table6"]
        assert len(table6.rows) == 9  # CPU + 2 GPUs + 6 accelerators


class TestFigure13:
    def test_user_study_figure(self):
        data = figure13()
        assert isinstance(data, FigureData)
        algorithms = {row[0] for row in data.rows}
        assert algorithms == {"Kmeans", "DCT"}
        assert data.summary["average_loc_x"] > 1.5
        assert data.summary["average_time_x"] > 1.0
        # Time reduction is smaller than LOC reduction (unfamiliarity).
        for _, loc_reduction, time_reduction in data.rows:
            assert time_reduction < loc_reduction


class TestGeomean:
    def test_geomean_basic(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_ignores_nonpositive(self):
        assert geomean([2.0, 0.0, -1.0]) == pytest.approx(2.0)

    def test_geomean_empty(self):
        assert geomean([]) == 0.0


class TestValidatedHarness:
    def test_validate_mode_checks_functionally(self):
        validated = Harness(validate=True)
        run = validated.run("MobileRobot")
        assert run.functional_ok is True
        assert run.functional_error < 1e-9
