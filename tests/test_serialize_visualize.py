"""Tests for srDFG serialisation, visualisation, and scalar expansion."""

import json

import pytest

from repro.errors import GraphError
from repro.srdfg import build, expand_scalar, scalar_op_histogram
from repro.srdfg.serialize import graph_to_dict, graph_to_json
from repro.srdfg.visualize import render_dot, render_text


class TestSerialize:
    def test_round_trips_through_json(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        payload = json.loads(graph_to_json(graph))
        assert payload["name"] == "main"
        assert payload["domain"] == "RBT"

    def test_nodes_carry_recursive_srdfg(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        payload = graph_to_dict(graph)
        components = [node for node in payload["nodes"] if node["kind"] == "component"]
        assert components
        assert all("srdfg" in node for node in components)

    def test_edges_reference_local_indices(self, matvec_source):
        graph = build(matvec_source)
        payload = graph_to_dict(graph)
        count = len(payload["nodes"])
        for edge in payload["edges"]:
            assert 0 <= edge["src"] < count
            assert 0 <= edge["dst"] < count
            assert set(edge["md"]) == {"name", "dtype", "modifier", "shape"}

    def test_stable_output(self, matvec_source):
        assert graph_to_json(build(matvec_source)) == graph_to_json(
            build(matvec_source)
        )

    def test_compute_nodes_export_counts(self, matvec_source):
        payload = graph_to_dict(build(matvec_source))
        compute = next(n for n in payload["nodes"] if n["kind"] == "compute")
        assert compute["op_counts"]["mul"] == 12

    def test_state_self_edges_round_trip(self, mpc_source):
        # State variables produce src == dst edges; they must serialise
        # as valid local indices, not trip the dangling-edge check.
        graph = build(mpc_source, domain="RBT")
        payload = json.loads(graph_to_json(graph))
        self_edges = [
            edge for edge in payload["edges"] if edge["src"] == edge["dst"]
        ]
        assert self_edges
        assert any(edge["md"]["modifier"] == "state" for edge in self_edges)

    def test_dangling_edge_raises_descriptive_graph_error(self, matvec_source):
        graph = build(matvec_source)
        # Simulate a buggy pass that removed a node but left its edges.
        victim = graph.compute_nodes()[0]
        graph.nodes.remove(victim)
        with pytest.raises(GraphError) as excinfo:
            graph_to_dict(graph)
        message = str(excinfo.value)
        assert victim.name in message
        assert graph.name in message
        assert "dangling" in message


class TestVisualize:
    def test_text_rendering_shows_levels(self, mpc_source):
        text = render_text(build(mpc_source, domain="RBT"))
        assert "srDFG 'main'" in text
        assert "mvmul" in text
        assert "(component)" in text

    def test_dot_rendering(self, matvec_source):
        dot = render_dot(build(matvec_source))
        assert dot.startswith("digraph")
        assert "matvec" in dot
        assert "->" in dot

    def test_dot_marks_state_self_edges_dashed(self, mpc_source):
        dot = render_dot(build(mpc_source, domain="RBT"))
        assert "style=dashed" in dot


class TestScalarExpansion:
    def test_matvec_expansion_counts(self, matvec_source):
        graph = build(matvec_source)
        [node] = graph.compute_nodes()
        scalar = expand_scalar(node)
        histogram = scalar_op_histogram(scalar)
        assert histogram["mul"] == 12
        assert histogram["sum"] == 8  # 4 outputs x (3-1) tree combines
        # Expansion attaches as the node's own srDFG (the recursion).
        assert node.srdfg is scalar
        assert graph.depth() == 1

    def test_reduction_predicate_respected(self):
        source = (
            "main(input float x[4], output float r) {"
            " index i[0:3]; r = sum[i: i != 0](x[i]); }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        scalar = expand_scalar(node)
        leaves = [n.name for n in scalar.nodes if n.attrs.get("leaf")]
        assert "x[0]" not in leaves
        assert "x[1]" in leaves

    def test_broken_predicate_surfaces_instead_of_selecting_all(self):
        # A predicate that genuinely fails to evaluate (here: modulo by
        # zero) must raise a descriptive GraphError — the old behaviour
        # silently treated ANY failure as "keep the element".
        source = (
            "main(input float x[4], output float r) {"
            " index i[0:3]; r = sum[i: i % 0 == 0](x[i]); }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        with pytest.raises(GraphError, match="predicate for index 'i'"):
            expand_scalar(node)

    def test_data_dependent_predicate_keeps_elements(self):
        # A predicate static evaluation cannot see through (it compares
        # against a runtime param) is NOT an error: every element stays
        # in, deferring the selection to the runtime predicate.
        source = (
            "main(input float x[4], param float t, output float r) {"
            " index i[0:3]; r = sum[i: i > t](x[i]); }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        scalar = expand_scalar(node)
        leaves = [n.name for n in scalar.nodes if n.attrs.get("leaf")]
        assert {"x[0]", "x[1]", "x[2]", "x[3]"} <= set(leaves)

    def test_limit_enforced(self):
        source = (
            "main(input float A[64][64], input float x[64], output float y[64]) {"
            " index i[0:63], j[0:63]; y[j] = sum[i](A[j][i]*x[i]); }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        with pytest.raises(GraphError, match="limit"):
            expand_scalar(node, limit=100)

    def test_only_compute_nodes_expandable(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        component = graph.component_nodes()[0]
        with pytest.raises(GraphError):
            expand_scalar(component)

    def test_three_level_recursion_matches_paper(self, mpc_source):
        # component -> statement -> scalar: the srDFG's full recursion.
        graph = build(mpc_source, domain="RBT")
        predict = next(
            n for n in graph.component_nodes() if n.name == "predict_trajectory"
        )
        statement = predict.subgraph.compute_nodes()[0]
        expand_scalar(statement)
        assert graph.depth() >= 2
