"""Failure-injection tests: every phase fails loudly with its own error,
and the fault-tolerant runtime recovers from injected hardware faults."""

import numpy as np
import pytest

from repro.driver import CompilerSession
from repro.errors import (
    ExecutionError,
    LoweringError,
    PMLangSemanticError,
    PMLangSyntaxError,
    PassError,
    RuntimeFailure,
    ShapeError,
    TargetError,
)
from repro.hw import HardwareParams, SoCRuntime
from repro.passes import PassManager
from repro.runtime import (
    FaultPlan,
    FaultSpec,
    HostManager,
    RecoveryPolicy,
    parse_fault_spec,
)
from repro.srdfg import Executor, build
from repro.targets import Accelerator, AcceleratorSpec, PolyMath, default_accelerators


class TestFrontEndFailures:
    def test_lexical_error(self):
        with pytest.raises(PMLangSyntaxError):
            build("main(input float x) { x @ 1; }")

    def test_semantic_error_reaches_build(self):
        with pytest.raises(PMLangSemanticError):
            build("main(input float x[2]) { index i[0:1]; x[i] = 1.0; }")

    def test_shape_error_on_symbolic_main_dims(self):
        with pytest.raises(ShapeError, match="compile-time"):
            build("main(input float x[n], output float y[n]) "
                  "{ index i[0:n-1]; y[i] = x[i]; }")

    def test_runtime_param_in_index_bound(self):
        source = (
            "f(input float x[4], param float k, output float y[4]) {"
            " index i[0:k-1]; y[i] = x[i]; }\n"
            "main(input float x[4], param float k, output float y[4]) {"
            " f(x, k, y); }"
        )
        with pytest.raises(ShapeError):
            build(source)


class TestCompilerFailures:
    class NoNonlinear(Accelerator):
        """A crippled backend with no transcendental support."""

        name = "no-nl"
        domain = "DA"
        spec = AcceleratorSpec(
            supported_ops=frozenset({"copy"}),
            scalar_classes=frozenset({"alu", "mul"}),
        )
        params = HardwareParams(
            name="no-nl",
            frequency_hz=1e8,
            throughput={"alu": 1.0, "mul": 1.0},
            power_w=1.0,
        )

    SIGMOID_SOURCE = (
        "main(input float x[4], output float y[4]) {"
        " index i[0:3]; y[i] = sigmoid(x[i]); }"
    )

    def test_unsupported_scalar_class_fails_compilation(self):
        # §III-C: "if the nodes ... cannot be lowered to a specific
        # hardware ... the compilation fails for that accelerator."
        compiler = PolyMath({"DA": self.NoNonlinear()})
        with pytest.raises(LoweringError, match="nonlinear"):
            compiler.compile(self.SIGMOID_SOURCE, domain="DA")

    def test_missing_domain_accelerator(self):
        compiler = PolyMath({"DA": default_accelerators()["DA"]})
        source = (
            "f(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i]; }\n"
            "main(input float x[4], output float y[4]) { DSP: f(x, y); }"
        )
        with pytest.raises((TargetError, LoweringError)):
            compiler.compile(source, domain="DA")

    def test_pass_failure_is_wrapped(self, mpc_source):
        from repro.passes.base import Pass

        class Exploding(Pass):
            name = "exploding"

            def run(self, graph):
                raise RuntimeError("boom")

        with pytest.raises(PassError, match="exploding"):
            PassManager([Exploding()]).run(build(mpc_source, domain="RBT"))


class TestRuntimeFailures:
    SOURCE = (
        "main(input float x[4], param float p[2], state float s[3],"
        " output float y[4]) {"
        " index i[0:3]; y[i] = x[i] + p[0] + s[0]; }"
    )

    def test_missing_param(self):
        graph = build(self.SOURCE)
        with pytest.raises(ExecutionError, match="missing param"):
            Executor(graph).run(inputs={"x": np.zeros(4)})

    def test_bad_state_shape(self):
        graph = build(self.SOURCE)
        with pytest.raises(ExecutionError, match="shape"):
            Executor(graph).run(
                inputs={"x": np.zeros(4)},
                params={"p": np.zeros(2)},
                state={"s": np.zeros(7)},
            )

    def test_nan_inputs_propagate_not_crash(self):
        # Garbage in, garbage out — never a crash.
        graph = build(self.SOURCE)
        result = Executor(graph).run(
            inputs={"x": np.full(4, np.nan)},
            params={"p": np.zeros(2)},
        )
        assert np.all(np.isnan(result.outputs["y"]))

    def test_graph_mutation_detected_by_validate(self, mpc_source):
        from repro.errors import GraphError

        graph = build(mpc_source, domain="RBT")
        # Sabotage: create a genuine combinational cycle between two
        # compute nodes inside a component body.
        predict = next(
            node for node in graph.component_nodes()
            if node.name == "predict_trajectory"
        )
        inner = predict.subgraph
        first, second = inner.compute_nodes()[:2]
        from repro.srdfg.metadata import EdgeMeta

        inner.add_edge(second, first, EdgeMeta(name="bad"))
        inner.add_edge(first, second, EdgeMeta(name="bad2"))
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()


#: A two-domain pipeline with a genuine cross-domain (DMA) crossing.
TWO_DOMAIN_SOURCE = (
    "f(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i]*2.0; }\n"
    "g(input float y[4], output float z[4]) { index i[0:3]; z[i] = y[i]+1.0; }\n"
    "main(input float x[4], output float z[4]) "
    "{ float y[4]; DSP: f(x, y); DA: g(y, z); }"
)


@pytest.fixture(scope="module")
def two_domain_app():
    session = CompilerSession(default_accelerators())
    return session.compile(TWO_DOMAIN_SOURCE, domain="DSP")


@pytest.fixture()
def manager(two_domain_app):
    return HostManager(two_domain_app.accelerators)


class TestRuntimeFaults:
    """Runtime-level fault injection: stall, corruption, crash, determinism."""

    INPUTS = {"x": np.arange(4.0)}

    def test_fault_free_run_matches_analytic_soc_cost(self, two_domain_app, manager):
        report = manager.run(two_domain_app, inputs=self.INPUTS)
        analytic = SoCRuntime(two_domain_app.accelerators).execute(two_domain_app)
        assert report.completed
        assert report.total.seconds == pytest.approx(analytic.total.seconds)
        assert report.faults_injected == 0
        assert report.availability == pytest.approx(1.0)

    def test_stall_hits_watchdog_then_retry_succeeds(self, two_domain_app, manager):
        plan = FaultPlan(specs=(FaultSpec(kind="stall", domain="DSP"),), seed=5)
        report = manager.run(two_domain_app, inputs=self.INPUTS, fault_plan=plan)
        assert report.completed
        timeouts = report.events_of("watchdog-timeout")
        assert len(timeouts) == 1 and timeouts[0].fault == "stall"
        assert report.retries >= 1
        assert report.faults_injected == 1
        assert report.faults_recovered == 1
        # The stall burned a watchdog budget the fault-free run never pays.
        assert report.total.seconds > report.fault_free.seconds
        assert report.availability < 1.0
        assert report.events_of("backoff")  # waited before the retry

    def test_dma_corruption_retries_transfer_then_succeeds(
        self, two_domain_app, manager
    ):
        plan = FaultPlan(specs=(FaultSpec(kind="dma-corrupt", domain="DA"),), seed=5)
        report = manager.run(two_domain_app, inputs=self.INPUTS, fault_plan=plan)
        assert report.completed
        faults = [event for event in report.events if event.fault == "dma-corrupt"]
        assert faults and "checksum" in faults[-1].detail
        assert report.events_of("retry")
        assert report.faults_recovered == 1
        assert not report.degraded_domains  # a retried DMA needs no fallback

    def test_crash_degrades_to_host_with_identical_outputs(
        self, two_domain_app, manager
    ):
        baseline = manager.run(two_domain_app, inputs=self.INPUTS)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", domain="DA"),), seed=5)
        report = manager.run(two_domain_app, inputs=self.INPUTS, fault_plan=plan)

        assert report.completed
        assert report.degraded_domains == ["DA"]
        assert "DA" in report.unhealthy
        assert report.faults_injected == 1 and report.faults_recovered == 1
        assert report.retries >= 1
        assert report.events_of("host-fallback") and report.events_of("stage-replay")
        # Graceful degradation is functionally invisible: bit-for-bit.
        np.testing.assert_array_equal(
            report.result.outputs["z"], baseline.result.outputs["z"]
        )
        # The manager surfaced the fault through diagnostics too.
        assert any(
            "crash" in d.message for d in manager.diagnostics.warnings
        ) or any("crash" in d.message for d in manager.diagnostics.errors)

    def test_same_plan_and_seed_reproduce_identical_event_sequences(
        self, two_domain_app, manager
    ):
        plan = FaultPlan(
            specs=(
                FaultSpec(kind="stall", probability=0.4),
                FaultSpec(kind="dma-corrupt", probability=0.5),
            ),
            seed=11,
        )
        # Aborted runs must be exactly as reproducible as completed ones.
        first = manager.run(
            two_domain_app, fault_plan=plan, execute=False, raise_on_failure=False
        )
        second = manager.run(
            two_domain_app, fault_plan=plan, execute=False, raise_on_failure=False
        )
        assert first.event_signature() == second.event_signature()
        assert first.faults_injected == second.faults_injected
        assert first.completed == second.completed

        different = FaultPlan(specs=plan.specs, seed=12)
        third = manager.run(
            two_domain_app, fault_plan=different, execute=False, raise_on_failure=False
        )
        assert third.event_signature() != first.event_signature()

    def test_exhausted_retries_without_fallback_raise(self, two_domain_app):
        strict = HostManager(
            two_domain_app.accelerators,
            policy=RecoveryPolicy(max_attempts=2, host_fallback=False),
        )
        plan = FaultPlan(
            specs=(FaultSpec(kind="stall", domain="DSP", probability=1.0),), seed=1
        )
        with pytest.raises(RuntimeFailure) as excinfo:
            strict.run(two_domain_app, fault_plan=plan, execute=False)
        report = excinfo.value.report
        assert not report.completed
        assert report.events_of("abort")
        assert "failed" in report.abort_reason

    def test_crash_without_fallback_aborts(self, two_domain_app):
        strict = HostManager(
            two_domain_app.accelerators,
            policy=RecoveryPolicy(host_fallback=False),
        )
        plan = FaultPlan(specs=(FaultSpec(kind="crash", domain="DSP"),), seed=1)
        report = strict.run(
            two_domain_app, fault_plan=plan, execute=False, raise_on_failure=False
        )
        assert not report.completed
        assert "crash" in report.abort_reason

    def test_compiled_application_run_takes_the_runtime_path(self, two_domain_app):
        plan = FaultPlan(specs=(FaultSpec(kind="transient", domain="DSP"),), seed=2)
        report = two_domain_app.run(inputs=self.INPUTS, fault_plan=plan)
        assert report.completed
        assert report.faults_injected == 1
        np.testing.assert_array_equal(
            report.result.outputs["z"], np.arange(4.0) * 2.0 + 1.0
        )

    def test_run_report_serialises_and_renders(self, two_domain_app, manager):
        plan = FaultPlan(specs=(FaultSpec(kind="crash", domain="DA"),), seed=5)
        report = manager.run(two_domain_app, inputs=self.INPUTS, fault_plan=plan)
        payload = report.to_dict()
        assert payload["completed"] is True
        assert payload["degraded_domains"] == ["DA"]
        assert payload["events"][0]["kind"] == "dispatch"
        text = report.render()
        assert "host-fallback" in text and "crash" in text
        assert "availability" in text

    def test_backoff_is_bounded_and_exponential(self):
        policy = RecoveryPolicy(
            backoff_base_s=1e-4, backoff_factor=2.0, backoff_cap_s=3e-4
        )
        assert policy.backoff_s(1) == pytest.approx(1e-4)
        assert policy.backoff_s(2) == pytest.approx(2e-4)
        assert policy.backoff_s(3) == pytest.approx(3e-4)  # capped
        assert policy.backoff_s(10) == pytest.approx(3e-4)

    def test_fault_spec_parsing(self):
        spec = parse_fault_spec("dma-corrupt@DA:p=0.25:n=2")
        assert spec.kind == "dma-corrupt"
        assert spec.domain == "DA"
        assert spec.probability == 0.25
        assert spec.max_triggers == 2
        scheduled = parse_fault_spec("stall@DSP:at=0,2")
        assert scheduled.at == (0, 2)
        with pytest.raises(ValueError):
            parse_fault_spec("meltdown@DA")
        with pytest.raises(ValueError):
            parse_fault_spec("stall@DA:frequency=often")


#: Cross-domain ping-pong: DSP -> DA -> DSP -> DA. Regression source for
#: the stage-planning bug the fuzzer found — one-stage-per-domain
#: planning manufactured a false DA<->DSP dependency cycle here.
PING_PONG_SOURCE = (
    "f(input float x[4], output float y[4]) { index i[0:3]; y[i] = x[i]*2.0; }\n"
    "g(input float y[4], output float z[4]) { index i[0:3]; z[i] = y[i]+1.0; }\n"
    "main(input float x[4], output float z[4]) "
    "{ float u[4], v[4], w[4]; "
    "DSP: f(x, u); DA: g(u, v); DSP: f(v, w); DA: g(w, z); }"
)


@pytest.fixture(scope="module")
def ping_pong_app():
    session = CompilerSession(default_accelerators())
    return session.compile(PING_PONG_SOURCE, domain="DSP")


class TestPingPongStaging:
    """Ping-pong traffic needs per-segment stages, not one per domain."""

    INPUTS = {"x": np.arange(4.0)}

    def test_fault_free_ping_pong_runs_and_matches_analytic_result(
        self, ping_pong_app
    ):
        manager = HostManager(ping_pong_app.accelerators)
        report = manager.run(ping_pong_app, inputs=self.INPUTS)
        assert report.completed
        # z = ((x*2 + 1)*2) + 1
        np.testing.assert_array_equal(
            report.result.outputs["z"], np.arange(4.0) * 4.0 + 3.0
        )

    def test_stage_plan_segments_domains_and_orders_dependencies(
        self, ping_pong_app
    ):
        manager = HostManager(ping_pong_app.accelerators)
        stages = manager._stage_plan(ping_pong_app)
        # The alternation forces at least one domain to split into
        # multiple segments (the old planner emitted one stage per
        # domain and deadlocked on the resulting false cycle).
        per_domain = {}
        for stage in stages:
            per_domain.setdefault(stage.domain, []).append(stage.name)
        assert max(len(names) for names in per_domain.values()) > 1
        names = [stage.name for stage in stages]
        assert len(names) == len(set(names))
        # Kahn order: every dependency resolves strictly earlier.
        seen = set()
        for stage in stages:
            assert stage.deps <= seen, (
                f"stage {stage.name} depends on {stage.deps - seen} "
                "which never ran"
            )
            seen.add(stage.name)

    @pytest.mark.parametrize(
        "kind", ["transient", "stall", "dma-corrupt", "crash"]
    )
    def test_ping_pong_recovers_bit_identically_from_every_fault_kind(
        self, ping_pong_app, kind
    ):
        manager = HostManager(ping_pong_app.accelerators)
        baseline = manager.run(ping_pong_app, inputs=self.INPUTS)
        plan = FaultPlan(specs=(FaultSpec(kind=kind, domain="DA"),), seed=3)
        report = manager.run(
            ping_pong_app, inputs=self.INPUTS, fault_plan=plan
        )
        assert report.completed
        assert report.faults_injected == 1
        np.testing.assert_array_equal(
            report.result.outputs["z"], baseline.result.outputs["z"]
        )


class TestRecoveryPolicyEdges:
    """RecoveryPolicy corner cases: spec matrices, saturation, exhaustion."""

    @pytest.mark.parametrize("domain", [None, "DSP", "DA"])
    @pytest.mark.parametrize(
        "kind", ["transient", "stall", "crash", "dma-corrupt"]
    )
    def test_spec_matrix_parses_with_occurrence_schedule(self, kind, domain):
        text = kind if domain is None else f"{kind}@{domain}"
        spec = parse_fault_spec(f"{text}:at=1,3")
        assert spec.kind == kind
        assert spec.domain == domain
        assert spec.at == (1, 3)
        assert spec.probability is None
        if domain is not None:
            # Rendering round-trips through the parser (the any-domain
            # wildcard renders as ``@*``, which is display-only).
            again = parse_fault_spec(spec.render())
            assert (again.kind, again.domain, again.at) == (
                kind, domain, (1, 3)
            )

    @pytest.mark.parametrize("at_index,expect_hit", [(0, 1), (1, 1), (9, 0)])
    def test_occurrence_index_strikes_the_exact_dispatch(
        self, ping_pong_app, at_index, expect_hit
    ):
        # DSP dispatches twice in the ping-pong app, so at=0 and at=1
        # each strike exactly one of them and at=9 never fires.
        manager = HostManager(ping_pong_app.accelerators)
        plan = FaultPlan(
            specs=(FaultSpec(kind="transient", domain="DSP", at=(at_index,)),),
            seed=1,
        )
        report = manager.run(
            ping_pong_app, inputs={"x": np.arange(4.0)}, fault_plan=plan
        )
        assert report.completed
        assert report.faults_injected == expect_hit
        assert report.faults_recovered == expect_hit
        # The schedule is part of the event signature: reruns reproduce.
        again = manager.run(
            ping_pong_app, inputs={"x": np.arange(4.0)}, fault_plan=plan
        )
        assert again.event_signature() == report.event_signature()

    def test_backoff_saturates_at_the_cap(self):
        policy = RecoveryPolicy()
        assert policy.backoff_s(1) == pytest.approx(policy.backoff_base_s)
        delays = [policy.backoff_s(k) for k in range(1, 60)]
        assert delays == sorted(delays)  # monotone non-decreasing
        assert max(delays) == policy.backoff_cap_s
        # Far past the cap the exponent must not overflow into inf.
        assert policy.backoff_s(10_000) == policy.backoff_cap_s

    def test_watchdog_budget_has_a_floor_and_scales(self):
        policy = RecoveryPolicy(watchdog_factor=8.0, watchdog_min_s=1e-3)
        assert policy.watchdog_budget_s(0.0) == pytest.approx(1e-3)
        assert policy.watchdog_budget_s(1e-9) == pytest.approx(1e-3)
        assert policy.watchdog_budget_s(2.0) == pytest.approx(16.0)

    def test_invalid_policies_are_rejected(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)

    def test_watchdog_exhaustion_degrades_with_bit_identity(
        self, two_domain_app
    ):
        # Every accelerator attempt at DSP stalls; the retry budget burns
        # out and the manager must degrade DSP to the host — with the
        # exact same outputs as a fault-free run.
        manager = HostManager(two_domain_app.accelerators)
        baseline = manager.run(two_domain_app, inputs={"x": np.arange(4.0)})
        policy = RecoveryPolicy(
            max_attempts=2,
            backoff_base_s=1e-6,
            backoff_cap_s=1e-5,
            watchdog_min_s=1e-4,
        )
        plan = FaultPlan(
            specs=(
                FaultSpec(
                    kind="stall", domain="DSP", probability=1.0,
                    max_triggers=99,
                ),
            ),
            seed=2,
        )
        report = manager.run(
            two_domain_app,
            inputs={"x": np.arange(4.0)},
            fault_plan=plan,
            policy=policy,
        )
        assert report.completed
        assert "DSP" in report.degraded_domains
        assert report.events_of("watchdog-timeout")
        assert report.events_of("host-fallback")
        np.testing.assert_array_equal(
            report.result.outputs["z"], baseline.result.outputs["z"]
        )


class TestEndToEndChaos:
    """Acceptance scenario: the cascaded FFT->LR->MPC application survives
    an accelerator crash via host fallback, bit-for-bit."""

    @pytest.fixture(scope="class")
    def brainstimul(self):
        from repro.workloads import get_workload

        workload = get_workload("BrainStimul")
        session = CompilerSession(default_accelerators())
        app = session.compile(
            workload.source(),
            domain=workload.domain,
            data_hints=workload.hints(),
        )
        return workload, app

    def test_crash_in_da_completes_via_host_fallback(self, brainstimul):
        workload, app = brainstimul
        manager = HostManager(app.accelerators)
        kwargs = dict(
            inputs=workload.inputs(0, None),
            params=workload.params(),
            state=workload.initial_state(),
            hints=workload.hints(),
        )
        baseline = manager.run(app, **kwargs)
        plan = FaultPlan(specs=(FaultSpec(kind="crash", domain="DA"),), seed=7)
        report = manager.run(app, fault_plan=plan, **kwargs)

        assert report.completed
        assert report.degraded_domains == ["DA"]
        assert report.faults_injected == 1 and report.faults_recovered == 1
        assert report.retries >= 1
        for name in baseline.result.outputs:
            np.testing.assert_array_equal(
                report.result.outputs[name], baseline.result.outputs[name]
            )
        # Identical plan + seed => identical event stream, twice.
        replay = manager.run(app, fault_plan=plan, **kwargs)
        assert replay.event_signature() == report.event_signature()
