"""Failure-injection tests: every phase fails loudly with its own error."""

import numpy as np
import pytest

from repro.errors import (
    ExecutionError,
    LoweringError,
    PMLangSemanticError,
    PMLangSyntaxError,
    PassError,
    ShapeError,
    TargetError,
)
from repro.hw import HardwareParams
from repro.passes import PassManager
from repro.srdfg import Executor, build
from repro.targets import Accelerator, AcceleratorSpec, PolyMath, default_accelerators


class TestFrontEndFailures:
    def test_lexical_error(self):
        with pytest.raises(PMLangSyntaxError):
            build("main(input float x) { x @ 1; }")

    def test_semantic_error_reaches_build(self):
        with pytest.raises(PMLangSemanticError):
            build("main(input float x[2]) { index i[0:1]; x[i] = 1.0; }")

    def test_shape_error_on_symbolic_main_dims(self):
        with pytest.raises(ShapeError, match="compile-time"):
            build("main(input float x[n], output float y[n]) "
                  "{ index i[0:n-1]; y[i] = x[i]; }")

    def test_runtime_param_in_index_bound(self):
        source = (
            "f(input float x[4], param float k, output float y[4]) {"
            " index i[0:k-1]; y[i] = x[i]; }\n"
            "main(input float x[4], param float k, output float y[4]) {"
            " f(x, k, y); }"
        )
        with pytest.raises(ShapeError):
            build(source)


class TestCompilerFailures:
    class NoNonlinear(Accelerator):
        """A crippled backend with no transcendental support."""

        name = "no-nl"
        domain = "DA"
        spec = AcceleratorSpec(
            supported_ops=frozenset({"copy"}),
            scalar_classes=frozenset({"alu", "mul"}),
        )
        params = HardwareParams(
            name="no-nl",
            frequency_hz=1e8,
            throughput={"alu": 1.0, "mul": 1.0},
            power_w=1.0,
        )

    SIGMOID_SOURCE = (
        "main(input float x[4], output float y[4]) {"
        " index i[0:3]; y[i] = sigmoid(x[i]); }"
    )

    def test_unsupported_scalar_class_fails_compilation(self):
        # §III-C: "if the nodes ... cannot be lowered to a specific
        # hardware ... the compilation fails for that accelerator."
        compiler = PolyMath({"DA": self.NoNonlinear()})
        with pytest.raises(LoweringError, match="nonlinear"):
            compiler.compile(self.SIGMOID_SOURCE, domain="DA")

    def test_missing_domain_accelerator(self):
        compiler = PolyMath({"DA": default_accelerators()["DA"]})
        source = (
            "f(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i]; }\n"
            "main(input float x[4], output float y[4]) { DSP: f(x, y); }"
        )
        with pytest.raises((TargetError, LoweringError)):
            compiler.compile(source, domain="DA")

    def test_pass_failure_is_wrapped(self, mpc_source):
        from repro.passes.base import Pass

        class Exploding(Pass):
            name = "exploding"

            def run(self, graph):
                raise RuntimeError("boom")

        with pytest.raises(PassError, match="exploding"):
            PassManager([Exploding()]).run(build(mpc_source, domain="RBT"))


class TestRuntimeFailures:
    SOURCE = (
        "main(input float x[4], param float p[2], state float s[3],"
        " output float y[4]) {"
        " index i[0:3]; y[i] = x[i] + p[0] + s[0]; }"
    )

    def test_missing_param(self):
        graph = build(self.SOURCE)
        with pytest.raises(ExecutionError, match="missing param"):
            Executor(graph).run(inputs={"x": np.zeros(4)})

    def test_bad_state_shape(self):
        graph = build(self.SOURCE)
        with pytest.raises(ExecutionError, match="shape"):
            Executor(graph).run(
                inputs={"x": np.zeros(4)},
                params={"p": np.zeros(2)},
                state={"s": np.zeros(7)},
            )

    def test_nan_inputs_propagate_not_crash(self):
        # Garbage in, garbage out — never a crash.
        graph = build(self.SOURCE)
        result = Executor(graph).run(
            inputs={"x": np.full(4, np.nan)},
            params={"p": np.zeros(2)},
        )
        assert np.all(np.isnan(result.outputs["y"]))

    def test_graph_mutation_detected_by_validate(self, mpc_source):
        from repro.errors import GraphError

        graph = build(mpc_source, domain="RBT")
        # Sabotage: create a genuine combinational cycle between two
        # compute nodes inside a component body.
        predict = next(
            node for node in graph.component_nodes()
            if node.name == "predict_trajectory"
        )
        inner = predict.subgraph
        first, second = inner.compute_nodes()[:2]
        from repro.srdfg.metadata import EdgeMeta

        inner.add_edge(second, first, EdgeMeta(name="bad"))
        inner.add_edge(first, second, EdgeMeta(name="bad2"))
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()
