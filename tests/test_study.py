"""Tests for the user-study reproduction (Fig 13)."""

import numpy as np
import pytest

from repro.study import PYTHON_DCT, PYTHON_KMEANS, run_user_study
from repro.study.userstudy import UNFAMILIARITY_FACTOR
from repro.workloads.base import count_loc


class TestStimulusPrograms:
    """The Python stimulus programs must actually work (a study subject's
    submission is a correct implementation, not pseudo-code)."""

    def test_python_kmeans_runs_and_clusters(self):
        namespace = {}
        exec(PYTHON_KMEANS, namespace)
        rng = np.random.default_rng(0)
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        points = np.concatenate(
            [centers[0] + rng.normal(size=(50, 2)), centers[1] + rng.normal(size=(50, 2))]
        )
        assign, centroids, inertia = namespace["kmeans"](points, 2, 10)
        assert inertia > 0
        # The two blobs separate.
        assert len(set(assign[:50])) == 1
        assert len(set(assign[50:])) == 1
        assert assign[0] != assign[-1]

    def test_python_dct_matches_scipy_equivalent(self):
        from repro.workloads.reference import dct2_blocked

        namespace = {}
        exec(PYTHON_DCT, namespace)
        rng = np.random.default_rng(1)
        image = rng.normal(size=(16, 16))
        assert np.allclose(namespace["dct_blocked"](image), dct2_blocked(image))


class TestStudyResults:
    def test_loc_reductions_measured_from_real_sources(self):
        study = run_user_study()
        by_algorithm = {row.algorithm: row for row in study.rows}
        assert by_algorithm["Kmeans"].python_loc == count_loc(PYTHON_KMEANS)
        assert by_algorithm["DCT"].python_loc == count_loc(PYTHON_DCT)
        for row in study.rows:
            assert row.pmlang_loc > 0
            assert row.loc_reduction > 1.0  # PMLang is denser

    def test_kmeans_reduction_larger_than_dct(self):
        # The paper's observation: more verbose algorithms benefit more.
        study = run_user_study()
        by_algorithm = {row.algorithm: row for row in study.rows}
        assert (
            by_algorithm["Kmeans"].loc_reduction
            != by_algorithm["DCT"].loc_reduction
        )

    def test_time_model_discounts_unfamiliarity(self):
        study = run_user_study()
        for row in study.rows:
            assert row.time_reduction == pytest.approx(
                row.loc_reduction * UNFAMILIARITY_FACTOR
            )
            assert row.time_reduction < row.loc_reduction

    def test_averages_in_paper_band(self):
        # Paper: 2.5x LOC, 1.9x time. Accept the same direction within a
        # loose band (our measured LOC ratios differ from the study's
        # hand-written submissions).
        study = run_user_study()
        assert 1.5 < study.average_loc_reduction < 4.0
        assert 1.0 < study.average_time_reduction < 3.0
