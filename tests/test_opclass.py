"""Unit tests for operation classification and op counting."""


from repro.pmlang.parser import parse
from repro.srdfg.opclass import classify


def classify_stmt(body, ranges, args="input float A[8][8], input float x[8], output float y[8]"):
    program = parse(f"main({args}) {{ {body} }}")
    stmt = program.components["main"].body[-1]
    reductions = program.reductions
    return classify(stmt, ranges, reductions)


R8 = {"i": (0, 7), "j": (0, 7), "k": (0, 7)}


class TestNaming:
    def test_matvec(self):
        desc = classify_stmt("y[j] = sum[i](A[j][i]*x[i]);", R8)
        assert desc.opname == "matvec"
        assert desc.free_indices == ("j",)
        assert desc.reduce_indices == ("i",)

    def test_matvec_transposed_factors(self):
        desc = classify_stmt("y[j] = sum[i](x[i]*A[i][j]);", R8)
        assert desc.opname == "matvec"

    def test_dot(self):
        desc = classify_stmt(
            "r = sum[i](x[i]*z[i]);",
            {"i": (0, 7)},
            args="input float x[8], input float z[8], output float r",
        )
        assert desc.opname == "dot"
        assert desc.free_size == 1

    def test_matmul(self):
        desc = classify_stmt(
            "C[i][j] = sum[k](A[i][k]*B[k][j]);",
            R8,
            args="input float A[8][8], input float B[8][8], output float C[8][8]",
        )
        assert desc.opname == "matmul"

    def test_conv2d(self):
        ranges = {
            "oc": (0, 3), "oy": (0, 7), "ox": (0, 7),
            "ic": (0, 2), "ky": (0, 2), "kx": (0, 2),
        }
        desc = classify_stmt(
            "y[oc][oy][ox] = sum[ic][ky][kx](W[oc][ic][ky][kx]*x[ic][oy+ky][ox+kx]);",
            ranges,
            args="param float W[4][3][3][3], input float x[3][10][10], "
            "output float y[4][8][8]",
        )
        assert desc.opname == "conv2d"

    def test_stencil_single_affine_axis(self):
        desc = classify_stmt(
            "y[j] = sum[i](A[j][i]*x[i+1]);",
            {"i": (0, 6), "j": (0, 7)},
            args="input float A[8][7], input float x[8], output float y[8]",
        )
        assert desc.opname == "stencil"

    def test_elemwise_named_by_operator(self):
        assert classify_stmt("y[i] = x[i] + z[i];", R8,
                             args="input float x[8], input float z[8], output float y[8]"
                             ).opname == "elemwise_add"
        assert classify_stmt("y[i] = x[i] * z[i];", R8,
                             args="input float x[8], input float z[8], output float y[8]"
                             ).opname == "elemwise_mul"

    def test_map_function(self):
        desc = classify_stmt("y[i] = relu(x[i]);", R8,
                             args="input float x[8], output float y[8]")
        assert desc.opname == "map_relu"

    def test_copy(self):
        desc = classify_stmt("y[i] = x[i];", R8,
                             args="input float x[8], output float y[8]")
        assert desc.opname == "copy"

    def test_reduce_max(self):
        desc = classify_stmt("r = max[i](x[i]);", {"i": (0, 7)},
                             args="input float x[8], output float r")
        assert desc.opname == "reduce_max"

    def test_custom_reduction_name(self):
        program = parse(
            "reduction rmin(a,b) = a < b ? a : b;\n"
            "main(input float x[8], output float r) {"
            " index i[0:7]; r = rmin[i](x[i]); }"
        )
        stmt = program.components["main"].body[-1]
        desc = classify(stmt, {"i": (0, 7)}, program.reductions)
        assert desc.opname == "reduce_rmin"

    def test_fused_reduction_in_expression(self):
        desc = classify_stmt("y[j] = y[j] + sum[i](A[j][i]*x[i]);", R8)
        assert desc.opname == "matvec"
        assert desc.fused

    def test_predicate_flag(self):
        desc = classify_stmt("r = sum[i: i != 3](x[i]);", {"i": (0, 7)},
                             args="input float x[8], output float r")
        assert desc.has_predicate


class TestCounting:
    def test_matvec_counts(self):
        desc = classify_stmt("y[j] = sum[i](A[j][i]*x[i]);", R8)
        # 64 multiplies; 8 outputs x 7 combines = 56 adds.
        assert desc.op_counts["mul"] == 64
        assert desc.op_counts["alu"] == 56
        assert desc.free_size == 8
        assert desc.reduce_size == 8

    def test_elemwise_counts(self):
        desc = classify_stmt("y[i] = x[i] + 2.0*x[i];", R8,
                             args="input float x[8], output float y[8]")
        assert desc.op_counts["alu"] == 8
        assert desc.op_counts["mul"] == 8

    def test_nonlinear_counts(self):
        desc = classify_stmt("y[i] = sigmoid(x[i]);", R8,
                             args="input float x[8], output float y[8]")
        assert desc.op_counts["nonlinear"] == 8

    def test_ternary_counts_as_select(self):
        desc = classify_stmt("y[i] = x[i] > 0.0 ? x[i] : 0.0;", R8,
                             args="input float x[8], output float y[8]")
        # one compare + one select per element
        assert desc.op_counts["alu"] == 16

    def test_predicate_counts_charged(self):
        plain = classify_stmt("r = sum[i](x[i]);", {"i": (0, 7)},
                              args="input float x[8], output float r")
        masked = classify_stmt("r = sum[i: i != 3](x[i]);", {"i": (0, 7)},
                               args="input float x[8], output float r")
        assert masked.total_ops > plain.total_ops

    def test_custom_reduction_body_costed(self):
        program = parse(
            "reduction rmin(a,b) = a < b ? a : b;\n"
            "main(input float x[8], output float r) {"
            " index i[0:7]; r = rmin[i](x[i]); }"
        )
        stmt = program.components["main"].body[-1]
        desc = classify(stmt, {"i": (0, 7)}, program.reductions)
        # 7 combines x (compare + select) = 14 alu ops.
        assert desc.op_counts["alu"] == 14

    def test_strided_address_arithmetic_counted(self):
        desc = classify_stmt(
            "y[i] = x[2*i];", {"i": (0, 3)},
            args="input float x[8], output float y[4]",
        )
        assert desc.op_counts["mul"] == 4  # 2*i per element

    def test_total_and_macs(self):
        desc = classify_stmt("y[j] = sum[i](A[j][i]*x[i]);", R8)
        assert desc.total_ops == 120
        assert desc.macs == 56

    def test_lattice_points(self):
        desc = classify_stmt("y[j] = sum[i](A[j][i]*x[i]);", R8)
        assert desc.lattice_points == 64
