"""Unit tests for the pass framework and individual passes."""

import numpy as np
import pytest

from repro.errors import PassError
from repro.passes import (
    AlgebraicCombination,
    AlgebraicSimplification,
    CommonSubexpressionElimination,
    ConstantFolding,
    DeadCodeElimination,
    PassManager,
    default_pipeline,
    lower,
)
from repro.pmlang import ast_nodes as ast
from repro.passes.constant_folding import fold_expr
from repro.passes.algebraic import simplify_expr
from repro.srdfg import Executor, build


def execute(graph, **kwargs):
    return Executor(graph).run(**kwargs)


class TestConstantFolding:
    def test_fold_literal_arithmetic(self):
        expr = fold_expr(
            ast.BinOp(op="+", left=ast.Literal(value=2), right=ast.Literal(value=3)),
            {},
            set(),
        )
        assert isinstance(expr, ast.Literal) and expr.value == 5

    def test_propagates_static_names(self):
        expr = fold_expr(ast.Name(id="h"), {"h": 10}, set())
        assert isinstance(expr, ast.Literal) and expr.value == 10

    def test_protected_names_stay_symbolic(self):
        expr = fold_expr(ast.Name(id="i"), {"i": 10}, {"i"})
        assert isinstance(expr, ast.Name)

    def test_folds_functions_of_constants(self):
        expr = fold_expr(
            ast.FuncCall(func="sqrt", args=(ast.Literal(value=9.0),)), {}, set()
        )
        assert isinstance(expr, ast.Literal)
        assert expr.value == pytest.approx(3.0)

    def test_ternary_constant_condition_selects_branch(self):
        expr = fold_expr(
            ast.Ternary(
                cond=ast.Literal(value=1),
                then=ast.Name(id="a"),
                other=ast.Name(id="b"),
            ),
            {},
            set(),
        )
        assert isinstance(expr, ast.Name) and expr.id == "a"

    def test_pass_preserves_execution(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " unroll s[2:2] { y[i] = x[i] * s + (3 - 3); } }"
        )
        inputs = {"x": np.arange(4.0)}
        graph = build(source)
        expected = execute(graph, inputs=inputs).outputs["y"]
        folded = PassManager([ConstantFolding()]).run(build(source)).graph
        got = execute(folded, inputs=inputs).outputs["y"]
        assert np.allclose(got, expected)
        # The unroll binder and literal zero must have been folded away.
        [node] = folded.compute_nodes()
        names = ast.expr_names(node.attrs["stmt"].value)
        assert "s" not in names


class TestAlgebraicSimplification:
    @pytest.mark.parametrize(
        "before, after",
        [
            ("x[i] * 1.0", "x[i]"),
            ("1.0 * x[i]", "x[i]"),
            ("x[i] + 0.0", "x[i]"),
            ("x[i] - 0.0", "x[i]"),
            ("x[i] / 1.0", "x[i]"),
        ],
    )
    def test_identities(self, before, after):
        source = (
            f"main(input float x[4], output float y[4]) {{"
            f" index i[0:3]; y[i] = {before}; }}"
        )
        graph = PassManager([AlgebraicSimplification()]).run(build(source)).graph
        [node] = graph.compute_nodes()
        assert isinstance(node.attrs["stmt"].value, ast.Indexed)

    def test_multiply_by_zero_annihilates(self):
        expr = simplify_expr(
            ast.BinOp(op="*", left=ast.Indexed(base="x", indices=(ast.Name(id="i"),)),
                      right=ast.Literal(value=0))
        )
        assert isinstance(expr, ast.Literal) and expr.value == 0

    def test_double_negation(self):
        expr = simplify_expr(
            ast.UnaryOp(op="-", operand=ast.UnaryOp(op="-", operand=ast.Name(id="a")))
        )
        assert isinstance(expr, ast.Name)


class TestDeadCode:
    def test_removes_unused_compute(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " float dead[4];"
            " dead[i] = x[i] * 3.0;"
            " y[i] = x[i] + 1.0; }"
        )
        graph = build(source)
        assert len(graph.compute_nodes()) == 2
        graph = PassManager([DeadCodeElimination()]).run(graph).graph
        assert len(graph.compute_nodes()) == 1
        assert graph.compute_nodes()[0].attrs["stmt"].target == "y"

    def test_keeps_interface_vars(self):
        source = (
            "main(input float unused[4], input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i]; }"
        )
        graph = PassManager([DeadCodeElimination()]).run(build(source)).graph
        assert {node.name for node in graph.var_nodes()} >= {"unused", "x", "y"}

    def test_state_writers_are_live(self):
        source = (
            "main(input float x, state float acc) { acc = acc + x; }"
        )
        graph = PassManager([DeadCodeElimination()]).run(build(source)).graph
        assert len(graph.compute_nodes()) == 1


class TestCse:
    def test_merges_identical_local_computations(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " float a[4], b[4];"
            " a[i] = x[i] * 2.0;"
            " b[i] = x[i] * 2.0;"
            " y[i] = a[i] + b[i]; }"
        )
        inputs = {"x": np.arange(4.0)}
        graph = build(source)
        expected = execute(graph, inputs=inputs).outputs["y"]
        deduped = PassManager(
            [CommonSubexpressionElimination(), DeadCodeElimination()]
        ).run(build(source)).graph
        assert len(deduped.compute_nodes()) == 2  # one mul + the add
        got = execute(deduped, inputs=inputs).outputs["y"]
        assert np.allclose(got, expected)

    def test_does_not_merge_different_expressions(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " float a[4], b[4];"
            " a[i] = x[i] * 2.0;"
            " b[i] = x[i] * 3.0;"
            " y[i] = a[i] + b[i]; }"
        )
        graph = PassManager([CommonSubexpressionElimination()]).run(build(source)).graph
        assert len(graph.compute_nodes()) == 3

    def test_skips_boundary_targets(self):
        source = (
            "main(input float x[4], output float y[4], output float z[4]) {"
            " index i[0:3];"
            " y[i] = x[i] * 2.0;"
            " z[i] = x[i] * 2.0; }"
        )
        graph = PassManager([CommonSubexpressionElimination()]).run(build(source)).graph
        assert len(graph.compute_nodes()) == 2


class TestAlgebraicCombination:
    def test_fuses_matvec_chain(self, mpc_source, mpc_data, mpc_reference_result):
        graph = build(mpc_source, domain="RBT")
        lower(graph, {"RBT": set()}, {"RBT": {"alu", "mul", "div", "nonlinear"}})
        before = len(graph.compute_nodes())
        fused = PassManager([AlgebraicCombination()]).run(graph).graph
        assert len(fused.compute_nodes()) < before
        assert any(
            node.attrs["descriptor"].fused for node in fused.compute_nodes()
        )
        result = execute(fused, **mpc_data)
        assert np.allclose(
            result.outputs["ctrl_sgnl"], mpc_reference_result["ctrl_sgnl"]
        )
        assert np.allclose(
            result.state["ctrl_mdl"], mpc_reference_result["ctrl_mdl"]
        )

    def test_no_fusion_for_multi_consumer_producer(self):
        source = (
            "main(input float A[4][4], input float x[4], output float y[4],"
            " output float z[4]) {"
            " index i[0:3], j[0:3];"
            " float t[4];"
            " t[j] = sum[i](A[j][i]*x[i]);"
            " y[j] = t[j] + 1.0;"
            " z[j] = t[j] + 2.0; }"
        )
        graph = build(source)
        fused = PassManager([AlgebraicCombination()]).run(graph).graph
        assert len(fused.compute_nodes()) == 3


class TestPassManager:
    def test_reports_deltas(self, mpc_source):
        result = default_pipeline().run(build(mpc_source, domain="RBT"))
        assert len(result.reports) == 5
        assert "constant-folding" in result.summary()

    def test_rejects_non_pass(self):
        with pytest.raises(PassError):
            PassManager().add(object())

    def test_reports_are_timed(self, mpc_source):
        result = default_pipeline().run(build(mpc_source, domain="RBT"))
        assert all(report.seconds >= 0.0 for report in result.reports)
        assert result.seconds == sum(r.seconds for r in result.reports)
        assert "ms" in result.summary()

    def test_counts_include_nested_graphs(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        top_level = len(graph.nodes)
        total_nodes, total_edges = graph.total_counts()
        assert total_nodes > top_level  # the MPC program nests components

        recursive = PassManager(recursive=True).run(graph)
        assert recursive.reports == []  # no passes, but counting still works

        result = default_pipeline().run(build(mpc_source, domain="RBT"))
        assert result.reports[0].nodes_before == total_nodes

    def test_flat_counting_opt_out(self, mpc_source):
        from repro.passes import ConstantFolding

        graph = build(mpc_source, domain="RBT")
        flat = PassManager([ConstantFolding()], recursive=False).run(graph)
        assert flat.reports[0].nodes_before == len(graph.nodes)

    def test_hooks_observe_each_pass(self, mpc_source):
        seen = []
        pipeline = default_pipeline()
        pipeline.add_hook(seen.append)
        result = pipeline.run(build(mpc_source, domain="RBT"))
        assert [r.name for r in seen] == [r.name for r in result.reports]
        with pytest.raises(PassError):
            pipeline.add_hook("nope")

    def test_default_pipeline_preserves_execution(
        self, mpc_source, mpc_data, mpc_reference_result
    ):
        graph = default_pipeline().run(build(mpc_source, domain="RBT")).graph
        result = execute(graph, **mpc_data)
        assert np.allclose(
            result.outputs["ctrl_sgnl"], mpc_reference_result["ctrl_sgnl"]
        )


class TestCopyPropagation:
    from repro.passes import CopyPropagation

    def test_interior_copy_removed(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " float t[4];"
            " t[i] = x[i];"
            " y[i] = t[i] + 1.0; }"
        )
        inputs = {"x": np.arange(4.0)}
        expected = execute(build(source), inputs=inputs).outputs["y"]
        from repro.passes import CopyPropagation

        graph = PassManager([CopyPropagation(), DeadCodeElimination()]).run(
            build(source)
        ).graph
        assert len(graph.compute_nodes()) == 1
        got = execute(graph, inputs=inputs).outputs["y"]
        assert np.allclose(got, expected)

    def test_boundary_copy_kept(self):
        # A copy producing an output variable must survive.
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " y[i] = x[i]; }"
        )
        from repro.passes import CopyPropagation

        graph = PassManager([CopyPropagation()]).run(build(source)).graph
        assert len(graph.compute_nodes()) == 1

    def test_strided_copy_kept(self):
        # Gather copies are real data movement, not identities.
        source = (
            "main(input float x[8], output float y[4]) {"
            " index i[0:3];"
            " float t[4];"
            " t[i] = x[2*i];"
            " y[i] = t[i]; }"
        )
        from repro.passes import CopyPropagation

        graph = PassManager([CopyPropagation()]).run(build(source)).graph
        names = [node.name for node in graph.compute_nodes()]
        assert names.count("copy") == 2

    def test_default_pipeline_includes_copy_propagation(
        self, mpc_source, mpc_data, mpc_reference_result
    ):
        graph = default_pipeline().run(build(mpc_source, domain="RBT")).graph
        result = execute(graph, **mpc_data)
        assert np.allclose(
            result.outputs["ctrl_sgnl"], mpc_reference_result["ctrl_sgnl"]
        )
        assert np.allclose(
            result.state["ctrl_mdl"], mpc_reference_result["ctrl_mdl"]
        )
