"""Shared fixtures: canonical PMLang programs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

#: The paper's Fig 4 MPC program (MobileRobot sizes).
MPC_SOURCE = """
predict_trajectory(input float pos[a], input float ctrl_mdl[b],
                   param float P[c][a], param float H[c][b],
                   output float pred[c]) {
  index i[0:a-1], j[0:b-1], k[0:c-1];
  pred[k] = sum[i](P[k][i]*pos[i]);
  pred[k] = pred[k] + sum[j](H[k][j]*ctrl_mdl[j]);
}

update_ctrl_model(input float ctrl_prev[b], input float g[b],
                  output float ctrl_mdl[b], output float ctrl_sgnl[s],
                  param int h) {
  index i[0:b-2], j[0:s-1];
  ctrl_sgnl[j] = ctrl_prev[h*j];
  ctrl_mdl[(h-1)*j] = 0;
  ctrl_mdl[i] = ctrl_prev[i+1] - g[i+1];
}

mvmul(input float A[m][n], input float B[n], output float C[m]) {
  index i[0:n-1], j[0:m-1];
  C[j] = sum[i](A[j][i]*B[i]);
}

compute_ctrl_grad(input float pos_pred[c], input float ctrl_mdl[b],
                  param float pos_ref[c], param float HQ_g[b][c],
                  param float R_g[b][b], output float g[b]) {
  index i[0:b-1], j[0:c-1];
  float P_g[b], H_g[b], err[c];
  err[j] = pos_ref[j] - pos_pred[j];
  mvmul(HQ_g, err, P_g);
  mvmul(R_g, ctrl_mdl, H_g);
  g[i] = P_g[i] + H_g[i];
}

main(input float pos[3], state float ctrl_mdl[20],
     param float pos_ref[30], param float P[30][3],
     param float HQ_g[20][30], param float H[30][20],
     param float R_g[20][20], output float ctrl_sgnl[2]) {
  float pos_pred[30], g[20];
  RBT: predict_trajectory(pos, ctrl_mdl, P, H, pos_pred);
  RBT: compute_ctrl_grad(pos_pred, ctrl_mdl, pos_ref, HQ_g, R_g, g);
  RBT: update_ctrl_model(ctrl_mdl, g, ctrl_mdl, ctrl_sgnl, 10);
}
"""

#: A minimal single-statement program for statement-level tests.
MATVEC_SOURCE = """
main(input float A[4][3], input float x[3], output float y[4]) {
  index i[0:2], j[0:3];
  y[j] = sum[i](A[j][i]*x[i]);
}
"""


@pytest.fixture(scope="session")
def mpc_source():
    return MPC_SOURCE


@pytest.fixture(scope="session")
def matvec_source():
    return MATVEC_SOURCE


@pytest.fixture(scope="session")
def mpc_data():
    """Deterministic parameter/state/input values for the MPC program."""
    rng = np.random.default_rng(0)
    return {
        "inputs": {"pos": np.array([1.0, 2.0, 0.5])},
        "params": {
            "pos_ref": rng.normal(size=30),
            "P": rng.normal(size=(30, 3)),
            "HQ_g": rng.normal(size=(20, 30)) * 0.01,
            "H": rng.normal(size=(30, 20)),
            "R_g": rng.normal(size=(20, 20)) * 0.01,
        },
        "state": {"ctrl_mdl": rng.normal(size=20)},
    }


@pytest.fixture(scope="session")
def mpc_reference_result(mpc_data):
    """Numpy-computed expected outputs for one MPC invocation."""
    pos = mpc_data["inputs"]["pos"]
    params = mpc_data["params"]
    ctrl = mpc_data["state"]["ctrl_mdl"]
    pred = params["P"] @ pos + params["H"] @ ctrl
    err = params["pos_ref"] - pred
    grad = params["HQ_g"] @ err + params["R_g"] @ ctrl
    signal = ctrl[[0, 10]].copy()
    new_ctrl = ctrl.copy()
    new_ctrl[[0, 9]] = 0.0
    new_ctrl[0:19] = ctrl[1:20] - grad[1:20]
    return {"ctrl_sgnl": signal, "ctrl_mdl": new_ctrl}
