"""Unit tests for the PMLang parser."""

import pytest

from repro.errors import PMLangSyntaxError
from repro.pmlang import ast_nodes as ast
from repro.pmlang.parser import parse


def parse_component(body, args="input float x[4], output float y[4]"):
    program = parse(f"main({args}) {{ {body} }}")
    return program.components["main"]


def first_stmt(body, **kwargs):
    return parse_component(body, **kwargs).body[0]


class TestComponents:
    def test_component_signature(self, mpc_source):
        program = parse(mpc_source)
        assert set(program.components) == {
            "predict_trajectory",
            "update_ctrl_model",
            "mvmul",
            "compute_ctrl_grad",
            "main",
        }
        mvmul = program.components["mvmul"]
        assert [arg.modifier for arg in mvmul.args] == ["input", "input", "output"]
        assert mvmul.args[0].dtype == "float"
        assert len(mvmul.args[0].dims) == 2

    def test_empty_component_body(self):
        component = parse_component("")
        assert component.body == ()

    def test_duplicate_component_rejected(self):
        with pytest.raises(PMLangSyntaxError):
            parse("a(input float x) { }\na(input float x) { }")

    def test_missing_close_brace(self):
        with pytest.raises(PMLangSyntaxError):
            parse("main(input float x) { x = 1;")

    def test_arg_requires_modifier(self):
        with pytest.raises(PMLangSyntaxError):
            parse("main(float x) { }")


class TestStatements:
    def test_index_declaration(self):
        stmt = first_stmt("index i[0:3], j[1:2*4];")
        assert isinstance(stmt, ast.IndexDecl)
        assert [spec.name for spec in stmt.specs] == ["i", "j"]
        assert isinstance(stmt.specs[1].high, ast.BinOp)

    def test_local_declaration_multiple(self):
        stmt = first_stmt("float a[4], b[2][2], c;")
        assert isinstance(stmt, ast.VarDecl)
        assert [item.name for item in stmt.items] == ["a", "b", "c"]
        assert len(stmt.items[1].dims) == 2
        assert stmt.items[2].dims == ()

    def test_assignment_with_indices(self):
        first_stmt("index i[0:3]; y[i] = x[i] + 1;")
        component = parse_component("index i[0:3]; y[i] = x[i] + 1;")
        assign = component.body[1]
        assert isinstance(assign, ast.Assign)
        assert assign.target == "y"
        assert isinstance(assign.target_indices[0], ast.Name)

    def test_component_call_with_domain(self):
        program = parse(
            "f(input float a[2], output float b[2]) { index i[0:1]; b[i]=a[i]; }\n"
            "main(input float x[2], output float y[2]) { RBT: f(x, y); }"
        )
        call = program.components["main"].body[0]
        assert isinstance(call, ast.ComponentCall)
        assert call.domain == "RBT"
        assert call.component == "f"

    def test_component_call_without_domain(self):
        program = parse(
            "f(input float a[2], output float b[2]) { index i[0:1]; b[i]=a[i]; }\n"
            "main(input float x[2], output float y[2]) { f(x, y); }"
        )
        assert program.components["main"].body[0].domain is None

    def test_unroll_block(self):
        stmt = first_stmt("unroll s[0:3] { y[0] = x[0]; }")
        assert isinstance(stmt, ast.Unroll)
        assert stmt.var == "s"
        assert len(stmt.body) == 1

    def test_missing_semicolon(self):
        with pytest.raises(PMLangSyntaxError):
            parse_component("y[0] = x[0]")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        stmt = first_stmt("y[0] = x[0] + x[1] * x[2];")
        assert stmt.value.op == "+"
        assert stmt.value.right.op == "*"

    def test_comparison_in_ternary(self):
        stmt = first_stmt("y[0] = x[0] < x[1] ? 1.0 : 0.0;")
        assert isinstance(stmt.value, ast.Ternary)
        assert stmt.value.cond.op == "<"

    def test_nested_ternary_right_associative(self):
        stmt = first_stmt("y[0] = x[0] ? 1 : x[1] ? 2 : 3;")
        assert isinstance(stmt.value.other, ast.Ternary)

    def test_logical_operators(self):
        stmt = first_stmt("y[0] = (x[0] > 0 && x[1] > 0) || x[2] > 0 ? 1 : 0;")
        assert stmt.value.cond.op == "||"

    def test_unary_minus_binds_tighter_than_mul(self):
        stmt = first_stmt("y[0] = -x[0] * x[1];")
        assert stmt.value.op == "*"
        assert isinstance(stmt.value.left, ast.UnaryOp)

    def test_power_operator(self):
        stmt = first_stmt("y[0] = 2 ^ 3;")
        assert stmt.value.op == "^"

    def test_function_call(self):
        stmt = first_stmt("y[0] = sigmoid(x[0]);")
        assert isinstance(stmt.value, ast.FuncCall)
        assert stmt.value.func == "sigmoid"

    def test_two_argument_function(self):
        stmt = first_stmt("y[0] = fmax(x[0], x[1]);")
        assert len(stmt.value.args) == 2

    def test_parenthesised_expression(self):
        stmt = first_stmt("y[0] = (x[0] + x[1]) * x[2];")
        assert stmt.value.op == "*"
        assert stmt.value.left.op == "+"


class TestReductions:
    def test_builtin_sum(self):
        component = parse_component("index i[0:3]; y[0] = sum[i](x[i]);")
        value = component.body[1].value
        assert isinstance(value, ast.ReductionCall)
        assert value.op == "sum"
        assert value.indices[0].name == "i"
        assert value.indices[0].predicate is None

    def test_predicate(self):
        component = parse_component(
            "index i[0:3]; y[0] = sum[i: i != 2](x[i]);"
        )
        value = component.body[1].value
        assert value.indices[0].predicate is not None
        assert value.indices[0].predicate.op == "!="

    def test_multi_index_reduction(self):
        source = (
            "main(input float A[3][3], output float r) {"
            " index i[0:2], j[0:2];"
            " r = sum[i][j: j != i](A[i][j]); }"
        )
        value = parse(source).components["main"].body[1].value
        assert [spec.name for spec in value.indices] == ["i", "j"]
        assert value.indices[1].predicate is not None

    def test_custom_reduction_definition(self):
        program = parse(
            "reduction mymin(a,b) = a < b ? a : b;\n"
            "main(input float x[4], output float r) {"
            " index i[0:3]; r = mymin[i](x[i]); }"
        )
        assert "mymin" in program.reductions
        value = program.components["main"].body[1].value
        assert isinstance(value, ast.ReductionCall)
        assert value.op == "mymin"

    def test_reduction_name_as_variable_subscript(self):
        # ``max`` used with expression subscripts must parse as indexed
        # access, not a reduction (backtracking test).
        source = (
            "main(input float max[4], output float y[4]) {"
            " index i[0:3]; y[i] = max[i+1-1]; }"
        )
        stmt = parse(source).components["main"].body[1]
        assert isinstance(stmt.value, ast.Indexed)
        assert stmt.value.base == "max"

    def test_duplicate_reduction_rejected(self):
        with pytest.raises(PMLangSyntaxError):
            parse("reduction f(a,b) = a; reduction f(a,b) = b;")


class TestWalkers:
    def test_expr_names_collects_bases_and_names(self):
        component = parse_component(
            "index i[0:3]; y[i] = sum[i: i != k](A[i] * b) + c;",
            args="input float A[4], input float b, input float c, "
            "input float k, output float y[4]",
        )
        names = ast.expr_names(component.body[1].value)
        assert {"A", "b", "c", "i", "k"} <= names
