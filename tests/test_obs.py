"""Tests for repro.obs: tracer, metrics registry, Chrome export, and the
traced serve run covering every instrumented layer."""

import json
import threading

import pytest

from repro.obs import (
    CATEGORIES,
    MetricsRegistry,
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    active,
    chrome_trace,
    chrome_trace_json,
    write_chrome_trace,
)


class TestTracer:
    def test_span_records_duration_and_category(self):
        tracer = Tracer()
        with tracer.span("work", category="session", detail="x"):
            pass
        (span,) = tracer.spans()
        assert span.name == "work"
        assert span.category == "session"
        assert span.duration >= 0.0
        assert span.args["detail"] == "x"
        assert span.parent_id is None
        assert not span.instant

    def test_nesting_tracks_parent_ids(self):
        tracer = Tracer()
        with tracer.span("outer", category="serve"):
            with tracer.span("inner", category="plan"):
                pass
        inner = next(s for s in tracer.spans() if s.name == "inner")
        outer = next(s for s in tracer.spans() if s.name == "outer")
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_instant_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.instant("tick", category="runtime", fault="transient")
        tick = next(s for s in tracer.spans() if s.name == "tick")
        outer = next(s for s in tracer.spans() if s.name == "outer")
        assert tick.instant
        assert tick.duration == 0.0
        assert tick.parent_id == outer.span_id
        assert tick.args["fault"] == "transient"

    def test_record_appends_explicit_timestamps(self):
        tracer = Tracer()
        tracer.record("queue-wait", category="serve", start=1.5, duration=0.25,
                      request_id="r-1")
        (span,) = tracer.spans()
        assert span.start == 1.5
        assert span.duration == 0.25
        assert span.args["request_id"] == "r-1"

    def test_span_error_annotation(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("boom")
        (span,) = tracer.spans()
        assert span.args["error"] == "ValueError"

    def test_note_attaches_args(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            span.note(provenance="built")
        assert tracer.spans()[0].args["provenance"] == "built"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible") as span:
            span.note(ignored=True)
        tracer.instant("invisible")
        tracer.record("invisible", start=0.0, duration=1.0)
        assert len(tracer) == 0
        # The disabled path hands out one shared no-op span: no
        # allocation per call.
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b") is NULL_SPAN

    def test_truthiness_is_identity_not_span_count(self):
        # __len__ would otherwise make an empty enabled tracer falsy and
        # `tracer or NULL_TRACER` defaults would silently discard it.
        assert bool(Tracer())
        assert bool(NULL_TRACER)
        assert active(None) is NULL_TRACER
        tracer = Tracer()
        assert active(tracer) is tracer

    def test_categories_and_counts(self):
        tracer = Tracer()
        with tracer.span("a", category="session"):
            pass
        with tracer.span("b", category="session"):
            pass
        tracer.instant("c", category="runtime")
        assert tracer.categories() == {"session", "runtime"}
        assert tracer.counts() == {"session": 2, "runtime": 1}
        tracer.clear()
        assert len(tracer) == 0

    def test_thread_safety_and_per_thread_parenthood(self):
        tracer = Tracer()
        spans_per_thread = 50
        threads = 8
        barrier = threading.Barrier(threads)

        def work(index):
            barrier.wait()
            for i in range(spans_per_thread):
                with tracer.span(f"outer-{index}", category="serve"):
                    with tracer.span(f"inner-{index}", category="plan"):
                        pass

        workers = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in workers:
            thread.start()
        for thread in workers:
            thread.join()
        spans = tracer.spans()
        assert len(spans) == threads * spans_per_thread * 2
        # Parenthood is per-thread: every inner span's parent is an outer
        # span from the same thread, never from a sibling thread.
        by_id = {span.span_id: span for span in spans}
        assert len(by_id) == len(spans)  # ids unique across threads
        for span in spans:
            if span.name.startswith("inner"):
                parent = by_id[span.parent_id]
                assert parent.name == span.name.replace("inner", "outer")
                assert parent.thread_name == span.thread_name


class TestChromeExport:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("compile", category="session"):
            with tracer.span("DCE", category="passes"):
                pass
            tracer.instant("fault", category="runtime", fault="transient")
        return tracer

    def test_chrome_trace_structure(self):
        tracer = self._traced()
        doc = chrome_trace(tracer)
        events = doc["traceEvents"]
        phases = [event["ph"] for event in events]
        assert "M" in phases  # process/thread metadata
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(complete) == 2
        assert len(instants) == 1
        for event in complete + instants:
            assert event["ts"] >= 0
            assert isinstance(event["pid"], int)
            assert "name" in event and "cat" in event
        for event in complete:
            assert event["dur"] >= 0
        assert instants[0]["s"] == "t"
        assert doc["displayTimeUnit"] == "ms"

    def test_chrome_trace_json_round_trips(self):
        text = chrome_trace_json(self._traced())
        doc = json.loads(text)
        assert {e["cat"] for e in doc["traceEvents"] if e["ph"] != "M"} == {
            "session", "passes", "runtime"
        }

    def test_write_chrome_trace_to_file(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(self._traced(), str(path))
        doc = json.loads(path.read_text())
        assert doc["traceEvents"]


class TestMetricsRegistry:
    def test_register_snapshot_flattens_namespaces(self):
        registry = MetricsRegistry()
        registry.register("alpha", lambda: {"x": 1, "y": 2})
        registry.register("beta", lambda: {"x": 10})
        snap = registry.snapshot()
        assert snap == {"alpha.x": 1, "alpha.y": 2, "beta.x": 10}
        assert sorted(registry.sources()) == ["alpha", "beta"]

    def test_bump_and_get(self):
        registry = MetricsRegistry()
        registry.bump("requests")
        registry.bump("requests", 4)
        assert registry.get("requests") == 5
        assert registry.get("missing", default=-1) == -1
        assert registry.snapshot()["requests"] == 5

    def test_reset_zeroes_counters_and_calls_source_resets(self):
        state = {"value": 7}
        registry = MetricsRegistry()
        registry.register(
            "src",
            lambda: {"value": state["value"]},
            lambda: state.update(value=0),
        )
        registry.bump("own", 3)
        registry.reset()
        assert registry.get("own") == 0
        assert registry.snapshot()["src.value"] == 0

    def test_latest_registration_wins(self):
        registry = MetricsRegistry()
        registry.register("src", lambda: {"v": 1})
        registry.register("src", lambda: {"v": 2})
        assert registry.snapshot() == {"src.v": 2}
        assert len(registry) == 1

    def test_rejects_non_callables(self):
        registry = MetricsRegistry()
        with pytest.raises(TypeError):
            registry.register("bad", {"not": "callable"})
        with pytest.raises(TypeError):
            registry.register("bad", dict, reset="nope")

    def test_render_lists_sorted_counters(self):
        registry = MetricsRegistry()
        registry.register("b", lambda: {"n": 2})
        registry.bump("a", 1)
        lines = registry.render().splitlines()
        assert lines[0].startswith("a")
        assert lines[1].startswith("b.n")

    def test_source_snapshot_may_reenter_registry(self):
        # Sources run outside the registry lock, so a source that reads
        # the registry back (e.g. to report its own counter) must not
        # deadlock.
        registry = MetricsRegistry()
        registry.bump("own", 1)
        registry.register("echo", lambda: {"own": registry.get("own")})
        assert registry.snapshot()["echo.own"] == 1


class TestTracedServe:
    def test_serve_run_covers_all_five_layers(self, tmp_path):
        from repro.serve import Request, Server, replay, synth_trace

        tracer = Tracer()
        trace = list(
            synth_trace(requests=3, workloads=("MobileRobot",), max_steps=2)
        )
        # One transient-fault request routes through the HostManager so
        # runtime-layer events appear on the same timeline.
        trace.append(
            Request(workload="MobileRobot", steps=1, inject=("transient",))
        )
        server = Server(workers=2, tracer=tracer)
        with server:
            responses, _ = replay(server, trace)
        assert all(response.ok for response in responses)
        assert set(CATEGORIES) <= tracer.categories()

        # The export is loadable JSON with events from every layer.
        path = tmp_path / "serve-trace.json"
        write_chrome_trace(tracer, str(path))
        doc = json.loads(path.read_text())
        cats = {e["cat"] for e in doc["traceEvents"] if e["ph"] != "M"}
        assert set(CATEGORIES) <= cats

        # Request spans and their queue-wait companions both made it.
        names = [span.name for span in tracer.spans(category="serve")]
        assert any(name.startswith("request ") for name in names)
        assert "queue-wait" in names

        # The unified registry sees every counter system at once.
        registry = server.metrics_registry()
        snap = registry.snapshot()
        assert snap["serve.completed"] == len(trace)
        assert snap["scheduler.admitted"] == len(trace)
        assert snap["plan.graphs_planned"] >= 1
        assert "cache.hits" in snap
        assert "pool.handler_faults" in snap

    def test_untraced_serve_records_nothing(self):
        from repro.serve import Server, replay, synth_trace

        trace = synth_trace(requests=2, workloads=("MobileRobot",), max_steps=1)
        server = Server(workers=2)
        with server:
            responses, _ = replay(server, trace)
        assert all(response.ok for response in responses)
        assert server.tracer is NULL_TRACER
        assert len(NULL_TRACER) == 0
