"""Unit tests for the hardware cost models and SoC runtime."""

import pytest

from repro.hw import (
    HardwareParams,
    PerfStats,
    RooflineModel,
    SoCRuntime,
    make_jetson,
    make_titan_xp,
    make_xeon,
)
from repro.srdfg import build
from repro.targets import PolyMath, default_accelerators


def simple_params(**overrides):
    base = dict(
        name="test",
        frequency_hz=1e9,
        throughput={"alu": 4.0, "mul": 4.0, "div": 1.0, "nonlinear": 1.0},
        power_w=10.0,
        static_fraction=0.5,
        dram_bw=10e9,
        onchip_bw=100e9,
        dispatch_overhead_s=0.0,
        efficiency=1.0,
        system_power_w=0.0,
    )
    base.update(overrides)
    return HardwareParams(**base)


class TestRoofline:
    def test_compute_bound_kernel(self):
        model = RooflineModel(simple_params())
        stats = model.kernel_cost({"mul": 4_000_000}, dram_bytes=8, onchip_bytes=0)
        assert stats.seconds == pytest.approx(1e-3, rel=1e-3)

    def test_memory_bound_kernel(self):
        model = RooflineModel(simple_params())
        stats = model.kernel_cost({"alu": 4}, dram_bytes=10_000_000, onchip_bytes=0)
        assert stats.seconds == pytest.approx(1e-3, rel=1e-3)

    def test_dispatch_overhead_added(self):
        model = RooflineModel(simple_params(dispatch_overhead_s=1e-6))
        stats = model.kernel_cost({"alu": 4}, 0, 0)
        assert stats.seconds >= 1e-6

    def test_unsupported_class_emulated_slowly(self):
        params = simple_params(throughput={"alu": 4.0})
        model = RooflineModel(params)
        native = RooflineModel(simple_params()).kernel_cost({"nonlinear": 1000}, 0, 0)
        emulated = model.kernel_cost({"nonlinear": 1000}, 0, 0)
        assert emulated.seconds > native.seconds

    def test_efficiency_scales_throughput(self):
        fast = RooflineModel(simple_params(efficiency=1.0))
        slow = RooflineModel(simple_params(efficiency=0.25))
        kernel = {"mul": 1_000_000}
        assert slow.kernel_cost(kernel, 0, 0).seconds == pytest.approx(
            4 * fast.kernel_cost(kernel, 0, 0).seconds
        )

    def test_energy_includes_system_power(self):
        with_system = RooflineModel(simple_params(system_power_w=5.0))
        without = RooflineModel(simple_params())
        kernel = {"mul": 1_000_000}
        assert (
            with_system.kernel_cost(kernel, 0, 0).energy_j
            > without.kernel_cost(kernel, 0, 0).energy_j
        )

    def test_transfer_cost(self):
        model = RooflineModel(simple_params())
        stats = model.transfer_cost(10_000_000)
        assert stats.seconds == pytest.approx(1e-3, rel=1e-3)
        assert stats.dram_bytes == 10_000_000


class TestPerfStats:
    def test_add_accumulates(self):
        a = PerfStats(seconds=1.0, op_count=10, energy_j=2.0, kernels=1)
        b = PerfStats(seconds=0.5, op_count=5, energy_j=1.0, kernels=2)
        a.add(b)
        assert a.seconds == 1.5
        assert a.op_count == 15
        assert a.kernels == 3

    def test_scaled(self):
        stats = PerfStats(seconds=1.0, op_count=10, energy_j=2.0, kernels=1,
                          breakdown={"k": 1.0})
        scaled = stats.scaled(4)
        assert scaled.seconds == 4.0
        assert scaled.breakdown["k"] == 4.0
        assert stats.seconds == 1.0  # original untouched

    def test_watts(self):
        stats = PerfStats(seconds=2.0, energy_j=10.0)
        assert stats.watts == 5.0


class TestBaselines:
    def test_cpu_estimate_positive(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        stats = make_xeon().estimate_graph(graph)
        assert stats.seconds > 0
        assert stats.energy_j > 0

    def test_gpu_launch_overhead_dominates_small_kernels(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        cpu = make_xeon().estimate_graph(graph)
        titan = make_titan_xp().estimate_graph(graph)
        # A tiny MPC step is launch-bound on a discrete GPU.
        assert titan.seconds > cpu.seconds

    def test_op_scale_hint_reduces_cost(self, matvec_source):
        graph = build(matvec_source, domain="GA")
        dense = make_xeon().estimate_graph(graph)
        sparse = make_xeon().estimate_graph(graph, hints={"op_scale": 0.01})
        assert sparse.seconds < dense.seconds

    def test_jetson_slower_than_titan_on_big_dense(self):
        source = (
            "main(input float A[256][256], input float B[256][256],"
            " output float C[256][256]) {"
            " index i[0:255], j[0:255], k[0:255];"
            " C[i][j] = sum[k](A[i][k]*B[k][j]); }"
        )
        graph = build(source, domain="DL")
        titan = make_titan_xp().estimate_graph(graph)
        jetson = make_jetson().estimate_graph(graph)
        assert titan.seconds < jetson.seconds


class TestSoC:
    CROSS_SOURCE = (
        "filt(input float x[8192], output float y[8192]) {"
        " index i[0:8191]; y[i] = sin(x[i]) * 0.5; }\n"
        "classify(input float y[8192], param float w[8192], output float score) {"
        " index i[0:8191]; score = sigmoid(sum[i](w[i]*y[i])); }\n"
        "main(input float x[8192], param float w[8192], output float score) {"
        " float y[8192];"
        " DSP: filt(x, y);"
        " DA: classify(y, w, score); }"
    )

    @pytest.fixture()
    def compiled(self):
        accelerators = default_accelerators()
        app = PolyMath(accelerators).compile(self.CROSS_SOURCE, domain="DSP")
        return app, accelerators

    def test_full_acceleration_report(self, compiled):
        app, accelerators = compiled
        soc = SoCRuntime(accelerators)
        report = soc.execute(app)
        assert set(report.per_domain) == set(app.programs)
        assert report.total.seconds > 0
        assert 0 <= report.communication_fraction <= 1

    def test_partial_acceleration_uses_host(self, compiled):
        app, accelerators = compiled
        soc = SoCRuntime(accelerators)
        partial = soc.execute(app, accelerated_domains={"DSP"})
        assert partial.per_domain["DA"].seconds > 0

    def test_cross_domain_dma_charged_only_near_accelerators(self, compiled):
        app, accelerators = compiled
        soc = SoCRuntime(accelerators)
        nothing = soc.execute(app, accelerated_domains=set())
        assert nothing.communication.seconds == 0.0
        full = soc.execute(app)
        assert full.communication.seconds > 0.0

    def test_amdahl_behaviour(self, compiled):
        # Accelerating both kernels is at least as fast as either alone.
        app, accelerators = compiled
        soc = SoCRuntime(accelerators)
        both = soc.execute(app).total.seconds
        dsp_only = soc.execute(app, accelerated_domains={"DSP"}).total.seconds
        da_only = soc.execute(app, accelerated_domains={"DA"}).total.seconds
        assert both <= dsp_only * 1.001
        assert both <= da_only * 1.001
