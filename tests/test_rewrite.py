"""Tests for the declarative rewrite engine (``repro.rewrite``).

Covers the pattern matcher (commutativity, capture binding, non-linear
patterns), the fixpoint driver (trip counts, cycle detection), parity
between the legacy visitor passes and their rule-set ports — including
property-based parity over random PMLang programs with bit-identical
execution through the :class:`~repro.srdfg.plan.ExecutionPlan` — and
cost-guided cross-domain fusion (legality around stateful nodes,
bit-identical fused vs unfused outputs).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.driver import CompilerSession
from repro.driver.diagnostics import Diagnostics
from repro.errors import ParityError, PassError, RewriteError
from repro.passes import ConstantFolding, PassManager, default_pipeline, legacy_pipeline
from repro.passes.base import Pass
from repro.pmlang import ast_nodes as ast
from repro.pmlang.parser import parse
from repro.rewrite import (
    REWRITE_STATS,
    Any,
    Bin,
    Bindings,
    ExplainLog,
    ExprRule,
    Lit,
    NodePattern,
    RulePass,
    RuleSet,
    graph_signature,
    parity_pipeline,
    rewrite_pipeline,
    rewrite_statement,
)
from repro.rewrite.engine import RewriteStats
from repro.rewrite.fusion import (
    FusionConfig,
    _crossing_candidates,
    _is_stateful,
    _relower_tag,
    fuse_cross_domain,
)
from repro.srdfg import build
from repro.srdfg.plan import PlanConfig, plan_for_graph


def _expr(source):
    """Parse one expression: the RHS of ``out = <source>;``."""
    program = parse(
        "main(input float x, input float y, input float z,"
        f" output float out) {{ out = {source}; }}"
    )
    return program.components["main"].body[0].value


# ---------------------------------------------------------------------------
# Pattern matcher
# ---------------------------------------------------------------------------


class TestPatternMatcher:
    def test_capture_binding(self):
        pattern = Bin(op="+", left=Any(name="a"), right=Any(name="b"))
        bindings = Bindings()
        assert pattern.match(_expr("x + 2"), bindings)
        assert isinstance(bindings["a"], ast.Name) and bindings["a"].id == "x"
        assert isinstance(bindings["b"], ast.Literal) and bindings["b"].value == 2

    def test_commutative_matches_swapped_operands(self):
        pattern = Bin(
            op="*", left=Any(name="e"), right=Lit(value=1), commutative=True
        )
        bindings = Bindings()
        assert pattern.match(_expr("1 * y"), bindings)
        assert bindings["e"].id == "y"

    def test_as_written_order_tried_first(self):
        # 1 * 1 matches either way; the as-written binding must win.
        pattern = Bin(
            op="*", left=Any(name="e"), right=Lit(value=1), commutative=True
        )
        expr = _expr("x * 1")
        bindings = Bindings()
        assert pattern.match(expr, bindings)
        assert bindings["e"] is expr.left

    def test_non_commutative_requires_order(self):
        pattern = Bin(op="*", left=Any(name="e"), right=Lit(value=1))
        assert not pattern.match(_expr("1 * y"), Bindings())
        assert pattern.match(_expr("y * 1"), Bindings())

    def test_non_linear_pattern_requires_equal_subtrees(self):
        pattern = Bin(op="-", left=Any(name="e"), right=Any(name="e"))
        assert pattern.match(_expr("(x + y) - (x + y)"), Bindings())
        assert not pattern.match(_expr("(x + y) - (x + z)"), Bindings())

    def test_commutative_retry_discards_partial_captures(self):
        # As-written order binds e := 1 then fails on the right side;
        # the swapped retry must start from clean bindings.
        pattern = Bin(
            op="+", left=Any(name="e"), right=Lit(value=1), commutative=True
        )
        bindings = Bindings()
        assert pattern.match(_expr("1 + x"), bindings)
        assert bindings["e"].id == "x"

    def test_numeric_literal_guard(self):
        assert Lit(numeric=True).match(_expr("3"), Bindings())
        assert not Lit(numeric=True).match(_expr('"s"'), Bindings())

    def test_op_collections(self):
        pattern = Bin(op=frozenset({"+", "-"}))
        assert pattern.match(_expr("x + y"), Bindings())
        assert pattern.match(_expr("x - y"), Bindings())
        assert not pattern.match(_expr("x * y"), Bindings())

    def test_where_predicate(self):
        pattern = Lit(numeric=True, where=lambda e: e.value > 10)
        assert pattern.match(_expr("11"), Bindings())
        assert not pattern.match(_expr("9"), Bindings())

    def test_node_pattern(self):
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] * 2.0; }"
        )
        [compute] = graph.compute_nodes()
        var = graph.var_nodes()[0]
        assert NodePattern(kind="compute").matches(graph, compute)
        assert not NodePattern(kind="compute").matches(graph, var)
        assert NodePattern(op=compute.name).matches(graph, compute)
        assert not NodePattern(op="no-such-op").matches(graph, compute)
        rejected = NodePattern(where=(lambda g, n: False,))
        assert not rejected.matches(graph, compute)


# ---------------------------------------------------------------------------
# Engine: trip counts, explain log, cycle detection
# ---------------------------------------------------------------------------


class TestEngine:
    def test_per_rule_trip_counts(self):
        stats = RewriteStats()
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] * 1.0 + (2 + 3); }"
        )
        rewrite_pipeline(stats=stats).run(graph)
        counters = stats.to_dict()
        assert counters["constant-folding/fold-binop.rewrites"] == 1
        assert counters["algebraic-simplification/mul-one.rewrites"] == 1
        # Matches dominate rewrites (a match may decline to fire).
        for rule, counts in stats.per_rule().items():
            assert counts["matches"] >= counts["rewrites"], rule

    def test_explain_log_records_sites(self):
        explain = ExplainLog()
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] * 1.0; }"
        )
        rewrite_pipeline(explain=explain).run(graph)
        assert len(explain) >= 1
        fired = explain.by_rule()
        assert fired.get("algebraic-simplification/mul-one") == 1
        rendered = explain.render()
        assert "algebraic-simplification/mul-one" in rendered
        assert "y@" in rendered  # the statement site

    def test_expression_cycle_detection(self):
        # A rule that swaps operands forever: the engine must detect the
        # regenerated expression and abort instead of spinning.
        ping_pong = RuleSet(
            name="ping-pong",
            expr_rules=(
                ExprRule(
                    name="swap",
                    pattern=Bin(op="+"),
                    build=lambda expr, bindings, ctx: ast.BinOp(
                        op="+", left=expr.right, right=expr.left
                    ),
                ),
            ),
        )
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] + 1.0; }"
        )
        [node] = graph.compute_nodes()
        with pytest.raises(RewriteError, match="cycles"):
            rewrite_statement(graph, node, ping_pong)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(RewriteError, match="strategy"):
            RuleSet(name="bad", strategy="shuffle")


# ---------------------------------------------------------------------------
# Parity: legacy visitor passes vs rule-set ports
# ---------------------------------------------------------------------------


def _random_pipeline_source(depth, size, operators, constants):
    lines = [f"  float t0[{size}];", f"  index i[0:{size - 1}];",
             "  t0[i] = x[i];"]
    previous = "t0"
    for level, (op, const) in enumerate(zip(operators, constants), start=1):
        name = f"t{level}"
        lines.insert(0, f"  float {name}[{size}];")
        lines.append(f"  {name}[i] = {previous}[i] {op} {const};")
        previous = name
    lines.append(f"  y[i] = {previous}[i];")
    return (
        f"main(input float x[{size}], output float y[{size}]) {{\n"
        + "\n".join(lines)
        + "\n}"
    )


@st.composite
def random_program(draw):
    depth = draw(st.integers(min_value=1, max_value=5))
    size = draw(st.integers(min_value=1, max_value=6))
    operators = [draw(st.sampled_from(["+", "-", "*"])) for _ in range(depth)]
    constants = [draw(st.integers(min_value=0, max_value=3)) for _ in range(depth)]
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return _random_pipeline_source(depth, size, operators, constants), size, seed


class TestParity:
    @given(random_program())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_rule_engine_matches_legacy(self, case):
        source, size, seed = case
        legacy_graph = legacy_pipeline().run(build(source)).graph
        rules_graph = rewrite_pipeline().run(build(source)).graph
        assert graph_signature(legacy_graph) == graph_signature(rules_graph)

        # Bit-identical execution through the ExecutionPlan engine.
        x = np.random.default_rng(seed).normal(size=size)
        config = PlanConfig(precision="f64")
        outputs = [
            plan_for_graph(graph, config=config)
            .execute(inputs={"x": x})
            .outputs["y"]
            for graph in (legacy_graph, rules_graph)
        ]
        assert np.array_equal(outputs[0], outputs[1])

    @given(random_program())
    @settings(max_examples=20, deadline=None)
    def test_parity_pipeline_asserts_random_programs(self, case):
        source, _, _ = case
        parity_pipeline().run(build(source))  # raises ParityError on divergence

    @pytest.mark.parametrize("name", ["MobileRobot", "FFT-8192"])
    def test_parity_pipeline_on_workloads(self, name):
        from repro.workloads import get_workload

        parity_pipeline().run(get_workload(name).build_graph())

    def test_parity_pass_detects_divergence(self):
        # A deliberately empty "constant-folding" rule set diverges from
        # the legacy pass on any foldable program.
        broken = RulePass(RuleSet(name="constant-folding"))
        pipeline = PassManager([_parity_pair(ConstantFolding(), broken)])
        graph = build(
            "main(input float x[4], output float y[4]) {"
            " index i[0:3]; y[i] = x[i] + (2 + 3); }"
        )
        with pytest.raises(ParityError, match="constant-folding"):
            pipeline.run(graph)

    def test_default_pipeline_is_rule_engine(self):
        pipeline = default_pipeline()
        assert all(isinstance(p, RulePass) for p in pipeline.passes)


def _parity_pair(legacy, rules):
    from repro.rewrite import ParityPass

    return ParityPass(legacy, rules)


# ---------------------------------------------------------------------------
# Cost-guided cross-domain fusion
# ---------------------------------------------------------------------------

#: Two-domain program where every kernel touches the state variable:
#: the DSP producer reads ``s``, the DA consumers read or write it, so
#: no legal fusion move exists even though a domain crossing does.
_STATEFUL_CROSSING = (
    "prod(input float s[4], input float x[4], output float t[4]) {"
    " index i[0:3]; t[i] = s[i] * 2.0 + x[i]; }\n"
    "cons(input float t[4], input float sin[4],"
    " output float sout[4], output float y[4]) {"
    " index i[0:3]; sout[i] = sin[i] + t[i]; y[i] = sout[i] * 0.5; }\n"
    "main(input float x[4], state float s[4], output float y[4]) {"
    " float t[4];"
    " DSP: prod(s, x, t);"
    " DA: cons(t, s, s, y);"
    "}"
)


def _compiled(name, fusion=None):
    from repro.targets import default_accelerators
    from repro.workloads import get_workload

    workload = get_workload(name)
    session = CompilerSession(fusion=fusion)
    app = session.compile(
        workload.source(),
        domain=workload.domain,
        component_domains=getattr(workload, "component_domains", None),
        accelerators=default_accelerators(
            getattr(workload, "accelerator_overrides", None)
        ),
        data_hints=workload.hints(),
    )
    return workload, app


class TestFusion:
    def test_stateful_nodes_detected(self):
        _, app = _compiled("BrainStimul")
        graph = app.graph
        stateful = [
            node for node in graph.compute_nodes() if _is_stateful(graph, node)
        ]
        assert stateful, "BrainStimul's MPC updates state in place"

    def test_crossing_candidates_are_legal(self):
        _, app = _compiled("BrainStimul")
        graph = app.graph
        candidates = _crossing_candidates(graph, app.accelerators)
        assert candidates, "BrainStimul has cross-domain kernel edges"
        for node, target, tag in candidates:
            assert not _is_stateful(graph, node)
            assert _relower_tag(node, app.accelerators[target]) == tag

    def test_no_fusion_across_stateful_nodes(self):
        from repro.targets import default_accelerators

        session = CompilerSession()
        app = session.compile(
            _STATEFUL_CROSSING,
            domain="DSP",
            accelerators=default_accelerators(),
        )
        graph = app.graph
        stateful = [
            node for node in graph.compute_nodes() if _is_stateful(graph, node)
        ]
        assert stateful, "the crossing kernels all touch state"
        report = fuse_cross_domain(graph, app.accelerators)
        assert report.transfers_before > 0, "a domain crossing exists"
        assert report.moves == [], "stateful kernels must not be retagged"
        assert report.transfers_after == report.transfers_before

    def test_fusion_reduces_transfers_outputs_bit_identical(self):
        for name in ("OptionPricing", "BrainStimul"):
            workload, plain = _compiled(name)
            _, fused = _compiled(name, fusion=FusionConfig())
            report = fused.fusion_report
            assert report is not None and report.moves
            assert report.transfers_after < report.transfers_before
            assert report.modeled_seconds_after < report.modeled_seconds_before

            inputs = workload.inputs(0, None)
            params = workload.params()
            config = PlanConfig(precision="f64")
            results = [
                plan_for_graph(app.graph, config=config).execute(
                    inputs=inputs,
                    params=params,
                    state={
                        key: np.asarray(value)
                        for key, value in workload.initial_state().items()
                    },
                )
                for app in (plain, fused)
            ]
            assert sorted(results[0].outputs) == sorted(results[1].outputs)
            for key in results[0].outputs:
                assert np.array_equal(
                    results[0].outputs[key], results[1].outputs[key]
                ), f"{name}:{key}"

    def test_max_moves_respected(self):
        _, fused = _compiled("BrainStimul", fusion=FusionConfig(max_moves=1))
        assert len(fused.fusion_report.moves) <= 1

    def test_session_fuse_stage_recorded(self):
        _, fused = _compiled("OptionPricing", fusion=FusionConfig())
        assert fused.fusion_report.transfers_removed > 0


# ---------------------------------------------------------------------------
# PassManager failure handling
# ---------------------------------------------------------------------------


class _ExplodingPass(Pass):
    name = "exploding-rewrite"

    def run(self, graph):
        raise ValueError("internal rule failure")


class _CorruptingPass(Pass):
    name = "graph-corruptor"

    def run(self, graph):
        # Drop a node while leaving its edges dangling: post-pass
        # validation must catch this and name the pass.
        victim = graph.compute_nodes()[0]
        graph.nodes = [n for n in graph.nodes if n.uid != victim.uid]
        del graph._nodes_by_uid[victim.uid]
        return graph


def _small_graph():
    return build(
        "main(input float x[4], output float y[4]) {"
        " index i[0:3]; y[i] = x[i] * 2.0; }"
    )


class TestPassManagerFailures:
    def test_pass_exception_wrapped_and_recorded(self):
        diagnostics = Diagnostics()
        manager = PassManager([_ExplodingPass()], diagnostics=diagnostics)
        with pytest.raises(PassError, match="exploding-rewrite.*failed during run"):
            manager.run(_small_graph())
        [entry] = diagnostics.errors
        assert entry.stage == "pass/exploding-rewrite"
        assert "internal rule failure" in entry.message

    def test_validation_failure_names_pass(self):
        manager = PassManager([_CorruptingPass()])
        with pytest.raises(PassError, match="graph-corruptor"):
            manager.run(_small_graph())

    def test_hook_failure_names_pass_and_phase(self):
        def bad_hook(report):
            raise RuntimeError("hook exploded")

        diagnostics = Diagnostics()
        manager = PassManager(
            [RulePass(RuleSet(name="noop"))],
            hooks=[bad_hook],
            diagnostics=diagnostics,
        )
        with pytest.raises(PassError, match="stage hook"):
            manager.run(_small_graph())
        [entry] = diagnostics.errors
        assert "stage hook" in entry.message

    def test_rewrite_error_keeps_type(self):
        class _RaisingRulePass(Pass):
            name = "raising"

            def run(self, graph):
                raise RewriteError("rule set 'x' cycles")

        with pytest.raises(RewriteError, match="cycles"):
            PassManager([_RaisingRulePass()]).run(_small_graph())
