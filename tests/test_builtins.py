"""Direct tests for PMLang's built-in function/reduction library."""

import numpy as np
import pytest

from repro.pmlang import builtins


class TestScalarFunctions:
    def test_every_function_has_impl_arity_cost(self):
        for name, (impl, arity, cost) in builtins.SCALAR_FUNCTIONS.items():
            assert callable(impl), name
            assert arity in (1, 2), name
            assert cost in ("alu", "mul", "div", "nonlinear"), name

    def test_gaussian_kernel(self):
        x = np.array([0.0, 1.0, -2.0])
        impl = builtins.SCALAR_FUNCTIONS["gaussian"][0]
        assert np.allclose(impl(x), np.exp(-x**2))

    def test_phi_is_normal_cdf(self):
        impl = builtins.SCALAR_FUNCTIONS["phi"][0]
        assert impl(np.array(0.0)) == pytest.approx(0.5)
        assert impl(np.array(3.0)) == pytest.approx(0.99865, abs=1e-4)

    def test_rsqrt(self):
        impl = builtins.SCALAR_FUNCTIONS["rsqrt"][0]
        assert impl(np.array(4.0)) == pytest.approx(0.5)

    def test_relu_is_alu_class(self):
        assert builtins.function_cost_class("relu") == "alu"
        assert builtins.function_cost_class("sigmoid") == "nonlinear"

    def test_atan2_two_arguments(self):
        impl, arity, _ = builtins.SCALAR_FUNCTIONS["atan2"]
        assert arity == 2
        assert impl(np.array(1.0), np.array(1.0)) == pytest.approx(np.pi / 4)


class TestGroupReductions:
    def test_argmax_flattens_multiple_axes(self):
        impl = builtins.GROUP_REDUCTIONS["argmax"][0]
        values = np.array([[[1.0, 9.0], [3.0, 2.0]], [[0.0, 4.0], [8.0, 5.0]]])
        # Reduce over the last two axes of each leading row.
        picks = impl(values, (1, 2))
        assert picks.tolist() == [1, 2]

    def test_identities(self):
        assert builtins.GROUP_REDUCTIONS["sum"][1] == 0.0
        assert builtins.GROUP_REDUCTIONS["prod"][1] == 1.0
        assert builtins.GROUP_REDUCTIONS["max"][1] is None

    def test_reduce_over_multiple_axes(self):
        impl = builtins.GROUP_REDUCTIONS["sum"][0]
        values = np.arange(24.0).reshape(2, 3, 4)
        assert np.allclose(impl(values, (1, 2)), values.reshape(2, -1).sum(axis=1))

    def test_is_builtin_queries(self):
        assert builtins.is_builtin_function("sin")
        assert not builtins.is_builtin_function("sinh")
        assert builtins.is_builtin_reduction("argmin")
        assert not builtins.is_builtin_reduction("median")


class TestCostTables:
    def test_binop_cost_classes(self):
        assert builtins.BINOP_COST["*"] == "mul"
        assert builtins.BINOP_COST["/"] == "div"
        assert builtins.BINOP_COST["+"] == "alu"
        assert builtins.BINOP_COST["^"] == "nonlinear"
