"""Unit tests for AST -> srDFG construction (shape binding, SSA edges)."""

import pytest

from repro.errors import ShapeError
from repro.pmlang.parser import parse
from repro.srdfg import build, eval_static
from repro.srdfg.graph import COMPUTE


class TestEvalStatic:
    def test_arithmetic(self):
        expr = parse("main(input float x[2*3+1]) { }").components["main"].args[0].dims[0]
        assert eval_static(expr, {}) == 7

    def test_names_from_env(self):
        expr = parse("main(input float x[n-1]) { }").components["main"].args[0].dims[0]
        assert eval_static(expr, {"n": 9}) == 8

    def test_log2_supported(self):
        expr = parse("main(input float x[log2(8)]) { }").components["main"].args[0].dims[0]
        assert eval_static(expr, {}) == 3

    def test_power(self):
        expr = parse("main(input float x[2^5]) { }").components["main"].args[0].dims[0]
        assert eval_static(expr, {}) == 32

    def test_unbound_name_raises(self):
        expr = parse("main(input float x[n]) { }").components["main"].args[0].dims[0]
        with pytest.raises(ShapeError, match="compile-time"):
            eval_static(expr, {})

    def test_ternary(self):
        expr = parse("main(input float x[1 < 2 ? 4 : 8]) { }").components["main"].args[0].dims[0]
        assert eval_static(expr, {}) == 4


class TestBoundaryNodes:
    def test_var_nodes_created_per_arg(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        names = {node.name for node in graph.var_nodes()}
        assert {"pos", "ctrl_mdl", "pos_ref", "P", "HQ_g", "H", "R_g", "ctrl_sgnl"} <= names

    def test_state_has_self_edge(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        self_edges = graph.state_edges()
        assert len(self_edges) == 1
        assert self_edges[0].md.name == "ctrl_mdl"
        assert self_edges[0].md.modifier == "state"

    def test_shapes_resolved(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        assert graph.vars["P"].shape == (30, 3)
        assert graph.vars["pos_pred"].shape == (30,)

    def test_domain_annotation_propagates(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        for node in graph.component_nodes():
            assert node.domain == "RBT"
            assert node.subgraph.domain == "RBT"


class TestShapeUnification:
    def test_dim_symbols_bound_from_actuals(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        grad = next(
            node for node in graph.component_nodes()
            if node.name == "compute_ctrl_grad"
        )
        # Two distinct mvmul instantiations with different bound shapes.
        mvmuls = grad.subgraph.component_nodes()
        shapes = sorted(sub.subgraph.vars["A"].shape for sub in mvmuls)
        assert shapes == [(20, 20), (20, 30)]

    def test_each_instantiation_gets_own_graph(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        grad = next(
            node for node in graph.component_nodes()
            if node.name == "compute_ctrl_grad"
        )
        first, second = grad.subgraph.component_nodes()
        assert first.subgraph is not second.subgraph

    def test_rank_mismatch_raises(self):
        source = (
            "f(input float a[n][m], output float y[n]) "
            "{ index i[0:n-1], j[0:m-1]; y[i] = sum[j](a[i][j]); }\n"
            "main(input float x[4], output float y[4]) { f(x, y); }"
        )
        with pytest.raises(ShapeError, match="rank"):
            build(source)

    def test_dim_conflict_raises(self):
        source = (
            "f(input float a[n], input float b[n], output float y[n]) "
            "{ index i[0:n-1]; y[i] = a[i] + b[i]; }\n"
            "main(input float x[4], input float z[5], output float y[4]) "
            "{ f(x, z, y); }"
        )
        with pytest.raises(ShapeError, match="mismatch"):
            build(source)

    def test_const_param_folds_into_static_env(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        update = next(
            node for node in graph.component_nodes()
            if node.name == "update_ctrl_model"
        )
        assert update.subgraph.static_env["h"] == 10
        # h never becomes a var node inside.
        assert "h" not in {node.name for node in update.subgraph.var_nodes()}

    def test_const_bound_to_output_rejected(self):
        source = (
            "f(input float a[2], output float y[2]) "
            "{ index i[0:1]; y[i] = a[i]; }\n"
            "main(input float x[2], output float y[2]) { f(x, y); }"
        )
        build(source)  # sanity
        bad = (
            "f(input float a[2], output float y) { y = a[0]; }\n"
            "main(input float x[2], output float y) { f(x, y); }"
        )
        build(bad)


class TestDataflowEdges:
    def test_ssa_versioning_orders_statements(self, matvec_source):
        graph = build(matvec_source)
        [node] = graph.compute_nodes()
        consumed = {edge.md.name for edge in graph.in_edges(node)}
        assert consumed == {"A", "x"}

    def test_partial_write_consumes_previous_version(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3], j[0:1];"
            " y[i] = x[i];"
            " y[2*j] = 0; }"
        )
        graph = build(source)
        nodes = graph.compute_nodes()
        second = nodes[1]
        assert second.attrs["partial_write"]
        sources = {edge.src.name for edge in graph.in_edges(second)}
        assert "copy" in sources or any(
            edge.src.kind == COMPUTE for edge in graph.in_edges(second)
        )

    def test_full_write_detection(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " y[i] = x[i] + 1.0; }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        assert not node.attrs["partial_write"]

    def test_strided_write_is_partial(self):
        source = (
            "main(input float x[4], output float y[8]) {"
            " index i[0:3];"
            " y[2*i] = x[i]; }"
        )
        graph = build(source)
        [node] = graph.compute_nodes()
        assert node.attrs["partial_write"]

    def test_writeback_edge_to_output(self, matvec_source):
        graph = build(matvec_source)
        output = next(node for node in graph.var_nodes("output"))
        writers = [
            edge for edge in graph.edges
            if edge.dst.uid == output.uid and edge.src.uid != output.uid
        ]
        assert len(writers) == 1
        assert writers[0].src.kind == COMPUTE

    def test_unroll_replicates_statements(self):
        source = (
            "main(input float x[4], output float y[4]) {"
            " index i[0:3];"
            " y[i] = x[i];"
            " unroll s[1:3] { y[i] = y[i] + s; } }"
        )
        graph = build(source)
        assert len(graph.compute_nodes()) == 4  # 1 + 3 unrolled

    def test_validate_passes(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        assert graph.validate()

    def test_recursion_depth(self, mpc_source):
        graph = build(mpc_source, domain="RBT")
        assert graph.depth() == 2  # main -> compute_ctrl_grad -> mvmul
